//! Capacity-bounded in-memory block store.
//!
//! The cache the eviction policies fight over. The store itself is
//! policy-free: it tracks sizes, capacity and pins, and refuses inserts that
//! do not fit — choosing *what* to evict to make space is the policy's job,
//! driven by the cluster runtime.
//!
//! Residency and pin tables are [`SlotMap`]s: dense per-slot vectors when
//! the store is built over a [`BlockSlots`] arena
//! ([`MemoryStore::with_slots`]), a plain `HashMap` otherwise. The dense
//! backing removes hashing from every `contains`/`insert`/`remove` on the
//! simulator's per-access path; behavior is identical either way (the
//! hash-vs-dense differential tests in `refdist-cluster` enforce it).

use refdist_dag::{BlockId, BlockSlots, SlotMap, TenantMap};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why an insert was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// Not enough free space; the caller must evict first.
    NeedsEviction {
        /// Bytes that must be freed before the insert can succeed.
        shortfall: u64,
    },
    /// The block is larger than the whole store and can never fit.
    TooLarge,
}

/// Per-tenant quota accounting, present only when the store serves a
/// multi-tenant combined application (see `refdist_dag::tenant`).
#[derive(Debug, Clone)]
struct Tenancy {
    map: Arc<TenantMap>,
    /// Per-tenant byte quota on this store. A tenant whose resident bytes
    /// would exceed it must evict its *own* blocks to get back under.
    quota: u64,
    /// Resident bytes per tenant.
    used: Vec<u64>,
    /// Evictable (unpinned resident) bytes per tenant — bounds how far a
    /// tenant can shrink itself, which gates quota-driven eviction.
    evictable: Vec<u64>,
}

impl Tenancy {
    #[inline]
    fn tenant(&self, block: BlockId) -> usize {
        self.map.tenant_of(block.rdd) as usize
    }
}

/// In-memory block store with byte capacity and pin counting.
///
/// Pinned blocks are in use by running tasks and must not be evicted —
/// Spark's `MemoryStore` has the same notion via block read locks.
#[derive(Debug, Clone)]
pub struct MemoryStore {
    capacity: u64,
    used: u64,
    /// Bytes reserved by execution memory (Spark's unified memory manager:
    /// shuffles borrow from the storage region for the duration of a stage).
    reserved: u64,
    blocks: SlotMap<u64>,
    pins: SlotMap<u32>,
    /// Unpinned resident blocks with sizes, kept sorted by id so the
    /// eviction hot path gets its candidate set without a per-pressure-event
    /// collect + sort. Maintained on insert/remove/pin/unpin/drain.
    evictable: BTreeMap<BlockId, u64>,
    /// Per-tenant quota accounting; `None` (the default and the entire
    /// single-app path) is byte-invisible.
    tenancy: Option<Tenancy>,
}

impl MemoryStore {
    /// A hash-backed store with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        MemoryStore {
            capacity,
            used: 0,
            reserved: 0,
            blocks: SlotMap::hashed(),
            pins: SlotMap::hashed(),
            evictable: BTreeMap::new(),
            tenancy: None,
        }
    }

    /// A store whose residency tables are dense vectors over `slots`.
    pub fn with_slots(capacity: u64, slots: Arc<BlockSlots>) -> Self {
        MemoryStore {
            capacity,
            used: 0,
            reserved: 0,
            blocks: SlotMap::dense(Arc::clone(&slots)),
            pins: SlotMap::dense(slots),
            evictable: BTreeMap::new(),
            tenancy: None,
        }
    }

    /// Enforce a per-tenant byte `quota` over the submissions of `map`.
    /// Must be called while the store is empty; inserts that would push a
    /// tenant over its quota then report the extra bytes as part of the
    /// eviction shortfall (the cluster layer evicts that tenant's own
    /// blocks first), or [`InsertError::TooLarge`] when the tenant cannot
    /// shrink itself far enough.
    pub fn enable_tenancy(&mut self, map: Arc<TenantMap>, quota: u64) {
        assert!(self.is_empty(), "tenancy must be enabled on an empty store");
        let n = map.num_tenants();
        self.tenancy = Some(Tenancy {
            map,
            quota,
            used: vec![0; n],
            evictable: vec![0; n],
        });
    }

    /// Adopt a newer slot-arena snapshot (streaming admission): the dense
    /// residency and pin tables grow to the new capacity, keeping every
    /// entry. No-op on hash-backed stores.
    pub fn adopt(&mut self, slots: &Arc<BlockSlots>) {
        self.blocks.adopt(Arc::clone(slots));
        self.pins.adopt(Arc::clone(slots));
    }

    /// Resident bytes of one tenant (0 when tenancy is disabled).
    pub fn tenant_used(&self, tenant: u32) -> u64 {
        self.tenancy
            .as_ref()
            .and_then(|t| t.used.get(tenant as usize).copied())
            .unwrap_or(0)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied by blocks.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently reserved by execution memory.
    #[inline]
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Reserve `bytes` for execution memory (0 releases the reservation).
    /// The caller is responsible for evicting first if blocks currently
    /// occupy the reserved span; until then `free()` saturates at zero.
    pub fn set_reserved(&mut self, bytes: u64) {
        self.reserved = bytes.min(self.capacity);
    }

    /// Bytes currently free for block storage.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used + self.reserved)
    }

    /// Number of resident blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `block` is resident.
    #[inline]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(block)
    }

    /// Size of a resident block.
    #[inline]
    pub fn size_of(&self, block: BlockId) -> Option<u64> {
        self.blocks.get(block).copied()
    }

    /// Insert a block. Re-inserting a resident block is a no-op (Spark keeps
    /// the existing entry).
    ///
    /// With tenancy enabled, bytes the owning tenant is over its quota by
    /// are folded into the reported shortfall; since the cluster layer
    /// evicts the over-quota tenant's own blocks first, freeing the
    /// shortfall always restores the quota. When the tenant cannot free
    /// enough of its own bytes (the rest are pinned), the insert is
    /// rejected as `TooLarge` rather than looping on an unmeetable demand.
    pub fn insert(&mut self, block: BlockId, size: u64) -> Result<(), InsertError> {
        if self.blocks.contains(block) {
            return Ok(());
        }
        if size > self.capacity {
            return Err(InsertError::TooLarge);
        }
        let global_shortfall = size.saturating_sub(self.free());
        if let Some(t) = &self.tenancy {
            let tid = t.tenant(block);
            if size > t.quota {
                return Err(InsertError::TooLarge);
            }
            let tenant_over = (t.used[tid] + size).saturating_sub(t.quota);
            let shortfall = global_shortfall.max(tenant_over);
            if shortfall > 0 {
                if t.evictable[tid] < tenant_over {
                    return Err(InsertError::TooLarge);
                }
                return Err(InsertError::NeedsEviction { shortfall });
            }
        } else if global_shortfall > 0 {
            return Err(InsertError::NeedsEviction {
                shortfall: global_shortfall,
            });
        }
        if let Some(t) = &mut self.tenancy {
            let tid = t.tenant(block);
            t.used[tid] += size;
            t.evictable[tid] += size;
        }
        self.blocks.insert(block, size);
        self.evictable.insert(block, size);
        self.used += size;
        Ok(())
    }

    /// Remove a block, returning its size if it was resident.
    ///
    /// # Panics
    /// Panics if the block is pinned — evicting a block a task is reading is
    /// a runtime bug.
    pub fn remove(&mut self, block: BlockId) -> Option<u64> {
        if let Some(size) = self.blocks.remove(block) {
            assert!(!self.is_pinned(block), "evicting pinned block {block}");
            self.evictable.remove(&block);
            self.used -= size;
            if let Some(t) = &mut self.tenancy {
                let tid = t.tenant(block);
                t.used[tid] -= size;
                t.evictable[tid] -= size;
            }
            Some(size)
        } else {
            None
        }
    }

    /// Pin a resident block against eviction (counted; pins nest).
    pub fn pin(&mut self, block: BlockId) {
        debug_assert!(self.contains(block), "pinning non-resident {block}");
        match self.pins.get_mut(block) {
            Some(c) => *c += 1,
            None => {
                self.pins.insert(block, 1);
            }
        }
        if let Some(size) = self.evictable.remove(&block) {
            if let Some(t) = &mut self.tenancy {
                let tid = t.tenant(block);
                t.evictable[tid] -= size;
            }
        }
    }

    /// Release one pin.
    pub fn unpin(&mut self, block: BlockId) {
        match self.pins.get_mut(block) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.pins.remove(block);
                if let Some(&size) = self.blocks.get(block) {
                    self.evictable.insert(block, size);
                    if let Some(t) = &mut self.tenancy {
                        let tid = t.tenant(block);
                        t.evictable[tid] += size;
                    }
                }
            }
            None => debug_assert!(false, "unpinning unpinned {block}"),
        }
    }

    /// Whether the block is currently pinned.
    #[inline]
    pub fn is_pinned(&self, block: BlockId) -> bool {
        self.pins.contains(block)
    }

    /// Remove every resident block (node failure), returning them sorted by
    /// id for deterministic downstream processing.
    ///
    /// # Panics
    /// Panics if any block is pinned: failing a node while tasks hold reads
    /// is a runtime bug in this simulator (failures are injected at stage
    /// boundaries).
    pub fn drain(&mut self) -> Vec<(BlockId, u64)> {
        assert!(self.pins.is_empty(), "draining store with pinned blocks");
        let mut all: Vec<(BlockId, u64)> = self.blocks.iter().map(|(b, &s)| (b, s)).collect();
        all.sort_unstable();
        self.blocks.clear();
        self.used = 0;
        self.evictable.clear();
        if let Some(t) = &mut self.tenancy {
            t.used.fill(0);
            t.evictable.fill(0);
        }
        all
    }

    /// Iterate over resident blocks and their sizes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, u64)> + '_ {
        self.blocks.iter().map(|(b, &s)| (b, s))
    }

    /// Resident blocks that are evictable (not pinned), ascending by id.
    pub fn evictable(&self) -> impl Iterator<Item = (BlockId, u64)> + '_ {
        self.evictable.iter().map(|(&b, &s)| (b, s))
    }

    /// The maintained evictable set (unpinned resident blocks → sizes),
    /// sorted by id — the candidate map handed to
    /// `CachePolicy::select_victims` with no per-call allocation.
    pub fn evictable_set(&self) -> &BTreeMap<BlockId, u64> {
        &self.evictable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    /// Run a test body against both backings; the dense arena covers rdds
    /// 0..4 × partitions 0..4 (every block the tests touch).
    fn both(f: impl Fn(MemoryStore)) {
        f(MemoryStore::new(100));
        let slots = Arc::new(BlockSlots::from_counts((0..4).map(|r| (RddId(r), 4))));
        f(MemoryStore::with_slots(100, slots));
    }

    #[test]
    fn insert_and_accounting() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.insert(blk(0, 1), 30).unwrap();
            assert_eq!(m.used(), 70);
            assert_eq!(m.free(), 30);
            assert_eq!(m.len(), 2);
            assert!(m.contains(blk(0, 0)));
            assert_eq!(m.size_of(blk(0, 1)), Some(30));
        });
    }

    #[test]
    fn insert_reports_shortfall() {
        both(|mut m| {
            m.insert(blk(0, 0), 80).unwrap();
            assert_eq!(
                m.insert(blk(0, 1), 50),
                Err(InsertError::NeedsEviction { shortfall: 30 })
            );
            // Store unchanged on failure.
            assert_eq!(m.used(), 80);
            assert!(!m.contains(blk(0, 1)));
        });
    }

    #[test]
    fn oversized_block_is_too_large() {
        both(|mut m| {
            assert_eq!(m.insert(blk(0, 0), 101), Err(InsertError::TooLarge));
        });
    }

    #[test]
    fn reinsert_is_noop() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.insert(blk(0, 0), 40).unwrap();
            assert_eq!(m.used(), 40);
            assert_eq!(m.len(), 1);
        });
    }

    #[test]
    fn remove_returns_size() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            assert_eq!(m.remove(blk(0, 0)), Some(40));
            assert_eq!(m.remove(blk(0, 0)), None);
            assert_eq!(m.used(), 0);
        });
    }

    #[test]
    fn pins_nest() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.pin(blk(0, 0));
            m.pin(blk(0, 0));
            m.unpin(blk(0, 0));
            assert!(m.is_pinned(blk(0, 0)));
            m.unpin(blk(0, 0));
            assert!(!m.is_pinned(blk(0, 0)));
        });
    }

    #[test]
    #[should_panic(expected = "evicting pinned block")]
    fn removing_pinned_block_panics() {
        let mut m = MemoryStore::new(100);
        m.insert(blk(0, 0), 40).unwrap();
        m.pin(blk(0, 0));
        m.remove(blk(0, 0));
    }

    #[test]
    fn evictable_excludes_pinned() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.insert(blk(0, 1), 40).unwrap();
            m.pin(blk(0, 0));
            let ev: Vec<_> = m.evictable().map(|(b, _)| b).collect();
            assert_eq!(ev, vec![blk(0, 1)]);
        });
    }

    #[test]
    fn evictable_set_tracks_pins_and_removals() {
        both(|mut m| {
            m.insert(blk(1, 0), 30).unwrap();
            m.insert(blk(0, 0), 20).unwrap();
            // Sorted by id, with sizes.
            let set: Vec<_> = m.evictable_set().iter().map(|(&b, &s)| (b, s)).collect();
            assert_eq!(set, vec![(blk(0, 0), 20), (blk(1, 0), 30)]);
            // Pinning hides a block; unpinning the last pin restores it.
            m.pin(blk(0, 0));
            m.pin(blk(0, 0));
            assert!(!m.evictable_set().contains_key(&blk(0, 0)));
            m.unpin(blk(0, 0));
            assert!(!m.evictable_set().contains_key(&blk(0, 0)));
            m.unpin(blk(0, 0));
            assert_eq!(m.evictable_set().get(&blk(0, 0)), Some(&20));
            // Removal and drain clear entries.
            m.remove(blk(1, 0));
            assert!(!m.evictable_set().contains_key(&blk(1, 0)));
            m.drain();
            assert!(m.evictable_set().is_empty());
        });
    }

    #[test]
    fn exact_fit_succeeds() {
        both(|mut m| {
            m.insert(blk(0, 0), 100).unwrap();
            assert_eq!(m.free(), 0);
        });
    }

    #[test]
    fn drain_empties_the_store() {
        both(|mut m| {
            m.insert(blk(1, 0), 30).unwrap();
            m.insert(blk(0, 1), 20).unwrap();
            let drained = m.drain();
            assert_eq!(drained, vec![(blk(0, 1), 20), (blk(1, 0), 30)]);
            assert_eq!(m.used(), 0);
            assert!(m.is_empty());
        });
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn drain_with_pins_panics() {
        let mut m = MemoryStore::new(100);
        m.insert(blk(0, 0), 10).unwrap();
        m.pin(blk(0, 0));
        m.drain();
    }

    #[test]
    fn reservation_shrinks_free_space() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.set_reserved(30);
            assert_eq!(m.free(), 30);
            assert_eq!(
                m.insert(blk(0, 1), 50),
                Err(InsertError::NeedsEviction { shortfall: 20 })
            );
            m.set_reserved(0);
            assert!(m.insert(blk(0, 1), 50).is_ok());
        });
    }

    #[test]
    fn over_reservation_saturates_free() {
        both(|mut m| {
            m.insert(blk(0, 0), 80).unwrap();
            m.set_reserved(90); // blocks still occupy the span; free saturates
            assert_eq!(m.free(), 0);
            assert_eq!(m.reserved(), 90);
            // Reservations are capped at capacity.
            m.set_reserved(500);
            assert_eq!(m.reserved(), 100);
        });
    }

    /// Two tenants: rdds 0..2 belong to tenant 0, rdds 2..4 to tenant 1.
    fn tenant_store(capacity: u64, quota: u64) -> MemoryStore {
        let mut m = MemoryStore::new(capacity);
        m.enable_tenancy(Arc::new(TenantMap::new(&[2, 2], &[0, 1])), quota);
        m
    }

    #[test]
    fn quota_counts_per_tenant() {
        let mut m = tenant_store(100, 60);
        m.insert(blk(0, 0), 40).unwrap();
        m.insert(blk(2, 0), 40).unwrap();
        assert_eq!(m.tenant_used(0), 40);
        assert_eq!(m.tenant_used(1), 40);
        m.remove(blk(0, 0));
        assert_eq!(m.tenant_used(0), 0);
    }

    #[test]
    fn over_quota_insert_demands_own_eviction() {
        let mut m = tenant_store(200, 60);
        m.insert(blk(0, 0), 40).unwrap();
        // 40 + 30 = 70 > 60 although the store has plenty of global room:
        // the shortfall is exactly the over-quota amount.
        assert_eq!(
            m.insert(blk(0, 1), 30),
            Err(InsertError::NeedsEviction { shortfall: 10 })
        );
        // Evicting the tenant's own block clears the way.
        m.remove(blk(0, 0));
        m.insert(blk(0, 1), 30).unwrap();
        // The other tenant is unaffected throughout.
        m.insert(blk(2, 0), 60).unwrap();
    }

    #[test]
    fn quota_shortfall_combines_with_global_pressure() {
        let mut m = tenant_store(100, 90);
        m.insert(blk(0, 0), 60).unwrap();
        m.insert(blk(2, 0), 30).unwrap();
        // Global shortfall 30, tenant-over 10: the larger wins.
        assert_eq!(
            m.insert(blk(0, 1), 40),
            Err(InsertError::NeedsEviction { shortfall: 30 })
        );
    }

    #[test]
    fn unmeetable_quota_is_too_large() {
        let mut m = tenant_store(200, 60);
        // Larger than the quota can never fit.
        assert_eq!(m.insert(blk(0, 0), 61), Err(InsertError::TooLarge));
        // Over quota with the tenant's resident bytes all pinned: evicting
        // its own blocks cannot help, so the insert must not loop.
        m.insert(blk(0, 0), 50).unwrap();
        m.pin(blk(0, 0));
        assert_eq!(m.insert(blk(0, 1), 20), Err(InsertError::TooLarge));
        m.unpin(blk(0, 0));
        assert_eq!(
            m.insert(blk(0, 1), 20),
            Err(InsertError::NeedsEviction { shortfall: 10 })
        );
    }

    #[test]
    fn tenancy_accounting_survives_pins_and_drain() {
        let mut m = tenant_store(100, 100);
        m.insert(blk(0, 0), 30).unwrap();
        m.insert(blk(2, 0), 20).unwrap();
        m.pin(blk(0, 0));
        m.pin(blk(0, 0));
        m.unpin(blk(0, 0));
        m.unpin(blk(0, 0));
        m.pin(blk(2, 0));
        m.unpin(blk(2, 0));
        assert_eq!(m.tenant_used(0), 30);
        assert_eq!(m.tenant_used(1), 20);
        m.drain();
        assert_eq!(m.tenant_used(0), 0);
        assert_eq!(m.tenant_used(1), 0);
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn tenancy_on_nonempty_store_panics() {
        let mut m = MemoryStore::new(100);
        m.insert(blk(0, 0), 10).unwrap();
        m.enable_tenancy(Arc::new(TenantMap::new(&[4], &[0])), 50);
    }

    #[test]
    fn zero_capacity_store_rejects_everything() {
        let mut m = MemoryStore::new(0);
        assert_eq!(m.insert(blk(0, 0), 1), Err(InsertError::TooLarge));
        assert!(m.insert(blk(0, 1), 0).is_ok()); // zero-size fits anywhere
    }
}
