//! Capacity-bounded in-memory block store.
//!
//! The cache the eviction policies fight over. The store itself is
//! policy-free: it tracks sizes, capacity and pins, and refuses inserts that
//! do not fit — choosing *what* to evict to make space is the policy's job,
//! driven by the cluster runtime.
//!
//! Residency and pin tables are [`SlotMap`]s: dense per-slot vectors when
//! the store is built over a [`BlockSlots`] arena
//! ([`MemoryStore::with_slots`]), a plain `HashMap` otherwise. The dense
//! backing removes hashing from every `contains`/`insert`/`remove` on the
//! simulator's per-access path; behavior is identical either way (the
//! hash-vs-dense differential tests in `refdist-cluster` enforce it).

use refdist_dag::{BlockId, BlockSlots, SlotMap};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why an insert was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// Not enough free space; the caller must evict first.
    NeedsEviction {
        /// Bytes that must be freed before the insert can succeed.
        shortfall: u64,
    },
    /// The block is larger than the whole store and can never fit.
    TooLarge,
}

/// In-memory block store with byte capacity and pin counting.
///
/// Pinned blocks are in use by running tasks and must not be evicted —
/// Spark's `MemoryStore` has the same notion via block read locks.
#[derive(Debug, Clone)]
pub struct MemoryStore {
    capacity: u64,
    used: u64,
    /// Bytes reserved by execution memory (Spark's unified memory manager:
    /// shuffles borrow from the storage region for the duration of a stage).
    reserved: u64,
    blocks: SlotMap<u64>,
    pins: SlotMap<u32>,
    /// Unpinned resident blocks with sizes, kept sorted by id so the
    /// eviction hot path gets its candidate set without a per-pressure-event
    /// collect + sort. Maintained on insert/remove/pin/unpin/drain.
    evictable: BTreeMap<BlockId, u64>,
}

impl MemoryStore {
    /// A hash-backed store with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        MemoryStore {
            capacity,
            used: 0,
            reserved: 0,
            blocks: SlotMap::hashed(),
            pins: SlotMap::hashed(),
            evictable: BTreeMap::new(),
        }
    }

    /// A store whose residency tables are dense vectors over `slots`.
    pub fn with_slots(capacity: u64, slots: Arc<BlockSlots>) -> Self {
        MemoryStore {
            capacity,
            used: 0,
            reserved: 0,
            blocks: SlotMap::dense(Arc::clone(&slots)),
            pins: SlotMap::dense(slots),
            evictable: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied by blocks.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently reserved by execution memory.
    #[inline]
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Reserve `bytes` for execution memory (0 releases the reservation).
    /// The caller is responsible for evicting first if blocks currently
    /// occupy the reserved span; until then `free()` saturates at zero.
    pub fn set_reserved(&mut self, bytes: u64) {
        self.reserved = bytes.min(self.capacity);
    }

    /// Bytes currently free for block storage.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used + self.reserved)
    }

    /// Number of resident blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `block` is resident.
    #[inline]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(block)
    }

    /// Size of a resident block.
    #[inline]
    pub fn size_of(&self, block: BlockId) -> Option<u64> {
        self.blocks.get(block).copied()
    }

    /// Insert a block. Re-inserting a resident block is a no-op (Spark keeps
    /// the existing entry).
    pub fn insert(&mut self, block: BlockId, size: u64) -> Result<(), InsertError> {
        if self.blocks.contains(block) {
            return Ok(());
        }
        if size > self.capacity {
            return Err(InsertError::TooLarge);
        }
        if size > self.free() {
            return Err(InsertError::NeedsEviction {
                shortfall: size - self.free(),
            });
        }
        self.blocks.insert(block, size);
        self.evictable.insert(block, size);
        self.used += size;
        Ok(())
    }

    /// Remove a block, returning its size if it was resident.
    ///
    /// # Panics
    /// Panics if the block is pinned — evicting a block a task is reading is
    /// a runtime bug.
    pub fn remove(&mut self, block: BlockId) -> Option<u64> {
        if let Some(size) = self.blocks.remove(block) {
            assert!(!self.is_pinned(block), "evicting pinned block {block}");
            self.evictable.remove(&block);
            self.used -= size;
            Some(size)
        } else {
            None
        }
    }

    /// Pin a resident block against eviction (counted; pins nest).
    pub fn pin(&mut self, block: BlockId) {
        debug_assert!(self.contains(block), "pinning non-resident {block}");
        match self.pins.get_mut(block) {
            Some(c) => *c += 1,
            None => {
                self.pins.insert(block, 1);
            }
        }
        self.evictable.remove(&block);
    }

    /// Release one pin.
    pub fn unpin(&mut self, block: BlockId) {
        match self.pins.get_mut(block) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.pins.remove(block);
                if let Some(&size) = self.blocks.get(block) {
                    self.evictable.insert(block, size);
                }
            }
            None => debug_assert!(false, "unpinning unpinned {block}"),
        }
    }

    /// Whether the block is currently pinned.
    #[inline]
    pub fn is_pinned(&self, block: BlockId) -> bool {
        self.pins.contains(block)
    }

    /// Remove every resident block (node failure), returning them sorted by
    /// id for deterministic downstream processing.
    ///
    /// # Panics
    /// Panics if any block is pinned: failing a node while tasks hold reads
    /// is a runtime bug in this simulator (failures are injected at stage
    /// boundaries).
    pub fn drain(&mut self) -> Vec<(BlockId, u64)> {
        assert!(self.pins.is_empty(), "draining store with pinned blocks");
        let mut all: Vec<(BlockId, u64)> = self.blocks.iter().map(|(b, &s)| (b, s)).collect();
        all.sort_unstable();
        self.blocks.clear();
        self.used = 0;
        self.evictable.clear();
        all
    }

    /// Iterate over resident blocks and their sizes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, u64)> + '_ {
        self.blocks.iter().map(|(b, &s)| (b, s))
    }

    /// Resident blocks that are evictable (not pinned), ascending by id.
    pub fn evictable(&self) -> impl Iterator<Item = (BlockId, u64)> + '_ {
        self.evictable.iter().map(|(&b, &s)| (b, s))
    }

    /// The maintained evictable set (unpinned resident blocks → sizes),
    /// sorted by id — the candidate map handed to
    /// `CachePolicy::select_victims` with no per-call allocation.
    pub fn evictable_set(&self) -> &BTreeMap<BlockId, u64> {
        &self.evictable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    /// Run a test body against both backings; the dense arena covers rdds
    /// 0..4 × partitions 0..4 (every block the tests touch).
    fn both(f: impl Fn(MemoryStore)) {
        f(MemoryStore::new(100));
        let slots = Arc::new(BlockSlots::from_counts((0..4).map(|r| (RddId(r), 4))));
        f(MemoryStore::with_slots(100, slots));
    }

    #[test]
    fn insert_and_accounting() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.insert(blk(0, 1), 30).unwrap();
            assert_eq!(m.used(), 70);
            assert_eq!(m.free(), 30);
            assert_eq!(m.len(), 2);
            assert!(m.contains(blk(0, 0)));
            assert_eq!(m.size_of(blk(0, 1)), Some(30));
        });
    }

    #[test]
    fn insert_reports_shortfall() {
        both(|mut m| {
            m.insert(blk(0, 0), 80).unwrap();
            assert_eq!(
                m.insert(blk(0, 1), 50),
                Err(InsertError::NeedsEviction { shortfall: 30 })
            );
            // Store unchanged on failure.
            assert_eq!(m.used(), 80);
            assert!(!m.contains(blk(0, 1)));
        });
    }

    #[test]
    fn oversized_block_is_too_large() {
        both(|mut m| {
            assert_eq!(m.insert(blk(0, 0), 101), Err(InsertError::TooLarge));
        });
    }

    #[test]
    fn reinsert_is_noop() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.insert(blk(0, 0), 40).unwrap();
            assert_eq!(m.used(), 40);
            assert_eq!(m.len(), 1);
        });
    }

    #[test]
    fn remove_returns_size() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            assert_eq!(m.remove(blk(0, 0)), Some(40));
            assert_eq!(m.remove(blk(0, 0)), None);
            assert_eq!(m.used(), 0);
        });
    }

    #[test]
    fn pins_nest() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.pin(blk(0, 0));
            m.pin(blk(0, 0));
            m.unpin(blk(0, 0));
            assert!(m.is_pinned(blk(0, 0)));
            m.unpin(blk(0, 0));
            assert!(!m.is_pinned(blk(0, 0)));
        });
    }

    #[test]
    #[should_panic(expected = "evicting pinned block")]
    fn removing_pinned_block_panics() {
        let mut m = MemoryStore::new(100);
        m.insert(blk(0, 0), 40).unwrap();
        m.pin(blk(0, 0));
        m.remove(blk(0, 0));
    }

    #[test]
    fn evictable_excludes_pinned() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.insert(blk(0, 1), 40).unwrap();
            m.pin(blk(0, 0));
            let ev: Vec<_> = m.evictable().map(|(b, _)| b).collect();
            assert_eq!(ev, vec![blk(0, 1)]);
        });
    }

    #[test]
    fn evictable_set_tracks_pins_and_removals() {
        both(|mut m| {
            m.insert(blk(1, 0), 30).unwrap();
            m.insert(blk(0, 0), 20).unwrap();
            // Sorted by id, with sizes.
            let set: Vec<_> = m.evictable_set().iter().map(|(&b, &s)| (b, s)).collect();
            assert_eq!(set, vec![(blk(0, 0), 20), (blk(1, 0), 30)]);
            // Pinning hides a block; unpinning the last pin restores it.
            m.pin(blk(0, 0));
            m.pin(blk(0, 0));
            assert!(!m.evictable_set().contains_key(&blk(0, 0)));
            m.unpin(blk(0, 0));
            assert!(!m.evictable_set().contains_key(&blk(0, 0)));
            m.unpin(blk(0, 0));
            assert_eq!(m.evictable_set().get(&blk(0, 0)), Some(&20));
            // Removal and drain clear entries.
            m.remove(blk(1, 0));
            assert!(!m.evictable_set().contains_key(&blk(1, 0)));
            m.drain();
            assert!(m.evictable_set().is_empty());
        });
    }

    #[test]
    fn exact_fit_succeeds() {
        both(|mut m| {
            m.insert(blk(0, 0), 100).unwrap();
            assert_eq!(m.free(), 0);
        });
    }

    #[test]
    fn drain_empties_the_store() {
        both(|mut m| {
            m.insert(blk(1, 0), 30).unwrap();
            m.insert(blk(0, 1), 20).unwrap();
            let drained = m.drain();
            assert_eq!(drained, vec![(blk(0, 1), 20), (blk(1, 0), 30)]);
            assert_eq!(m.used(), 0);
            assert!(m.is_empty());
        });
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn drain_with_pins_panics() {
        let mut m = MemoryStore::new(100);
        m.insert(blk(0, 0), 10).unwrap();
        m.pin(blk(0, 0));
        m.drain();
    }

    #[test]
    fn reservation_shrinks_free_space() {
        both(|mut m| {
            m.insert(blk(0, 0), 40).unwrap();
            m.set_reserved(30);
            assert_eq!(m.free(), 30);
            assert_eq!(
                m.insert(blk(0, 1), 50),
                Err(InsertError::NeedsEviction { shortfall: 20 })
            );
            m.set_reserved(0);
            assert!(m.insert(blk(0, 1), 50).is_ok());
        });
    }

    #[test]
    fn over_reservation_saturates_free() {
        both(|mut m| {
            m.insert(blk(0, 0), 80).unwrap();
            m.set_reserved(90); // blocks still occupy the span; free saturates
            assert_eq!(m.free(), 0);
            assert_eq!(m.reserved(), 90);
            // Reservations are capped at capacity.
            m.set_reserved(500);
            assert_eq!(m.reserved(), 100);
        });
    }

    #[test]
    fn zero_capacity_store_rejects_everything() {
        let mut m = MemoryStore::new(0);
        assert_eq!(m.insert(blk(0, 0), 1), Err(InsertError::TooLarge));
        assert!(m.insert(blk(0, 1), 0).is_ok()); // zero-size fits anywhere
    }
}
