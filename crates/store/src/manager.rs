//! Per-node block manager: memory + disk + statistics.

use crate::disk::DiskStore;
use crate::memory::{InsertError, MemoryStore};
use crate::stats::CacheStats;
use crate::NodeId;
use refdist_dag::BlockId;

/// Where a block lookup found the block on this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockWhere {
    /// Resident in the memory cache.
    Memory,
    /// On local disk only.
    Disk,
    /// Not present on this node.
    Missing,
}

/// A worker node's block manager, combining the memory cache and local disk.
#[derive(Debug, Clone)]
pub struct BlockManager {
    /// Owning node.
    pub node: NodeId,
    /// The bounded memory cache.
    pub memory: MemoryStore,
    /// Local disk (spills, shuffle output).
    pub disk: DiskStore,
    /// Per-node cache statistics.
    pub stats: CacheStats,
}

impl BlockManager {
    /// Create a manager for `node` with `memory_capacity` bytes of cache.
    pub fn new(node: NodeId, memory_capacity: u64) -> Self {
        BlockManager {
            node,
            memory: MemoryStore::new(memory_capacity),
            disk: DiskStore::new(),
            stats: CacheStats::new(),
        }
    }

    /// Like [`BlockManager::new`], but the memory store's residency tables
    /// are dense vectors over `slots`.
    pub fn with_slots(
        node: NodeId,
        memory_capacity: u64,
        slots: std::sync::Arc<refdist_dag::BlockSlots>,
    ) -> Self {
        BlockManager {
            node,
            memory: MemoryStore::with_slots(memory_capacity, slots),
            disk: DiskStore::new(),
            stats: CacheStats::new(),
        }
    }

    /// Adopt a newer slot-arena snapshot (streaming admission); the hash
    /// disk store is unaffected.
    pub fn adopt(&mut self, slots: &std::sync::Arc<refdist_dag::BlockSlots>) {
        self.memory.adopt(slots);
    }

    /// Locate a block on this node (memory preferred).
    pub fn locate(&self, block: BlockId) -> BlockWhere {
        if self.memory.contains(block) {
            BlockWhere::Memory
        } else if self.disk.contains(block) {
            BlockWhere::Disk
        } else {
            BlockWhere::Missing
        }
    }

    /// Try to cache a block in memory. On `NeedsEviction` the caller runs the
    /// policy's victim selection and calls [`BlockManager::evict`], then
    /// retries.
    pub fn put_memory(&mut self, block: BlockId, size: u64) -> Result<(), InsertError> {
        self.memory.insert(block, size)
    }

    /// Evict one block from memory. When `spill` is set (MEMORY_AND_DISK),
    /// the block moves to local disk; otherwise it is dropped.
    ///
    /// Returns the evicted size.
    pub fn evict(&mut self, block: BlockId, spill: bool) -> Option<u64> {
        let size = self.memory.remove(block)?;
        if spill {
            self.disk.insert(block, size);
        }
        self.stats.evictions += 1;
        self.stats.bytes_evicted += size;
        Some(size)
    }

    /// Remove a block everywhere on this node (purge order), counting it as
    /// a purge rather than a pressure eviction.
    pub fn purge(&mut self, block: BlockId) -> u64 {
        let mut freed = 0;
        if self.memory.contains(block) && !self.memory.is_pinned(block) {
            if let Some(s) = self.memory.remove(block) {
                freed += s;
                self.stats.purges += 1;
                self.stats.bytes_evicted += s;
            }
        }
        if let Some(s) = self.disk.remove(block) {
            freed += s;
        }
        freed
    }

    /// Fraction of the memory cache currently free, in `[0, 1]`.
    pub fn free_fraction(&self) -> f64 {
        if self.memory.capacity() == 0 {
            0.0
        } else {
            self.memory.free() as f64 / self.memory.capacity() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    fn mgr() -> BlockManager {
        BlockManager::new(NodeId(0), 100)
    }

    #[test]
    fn locate_prefers_memory() {
        let mut m = mgr();
        m.put_memory(blk(0, 0), 10).unwrap();
        m.disk.insert(blk(0, 0), 10);
        assert_eq!(m.locate(blk(0, 0)), BlockWhere::Memory);
        assert_eq!(m.locate(blk(0, 1)), BlockWhere::Missing);
    }

    #[test]
    fn evict_with_spill_moves_to_disk() {
        let mut m = mgr();
        m.put_memory(blk(0, 0), 10).unwrap();
        assert_eq!(m.evict(blk(0, 0), true), Some(10));
        assert_eq!(m.locate(blk(0, 0)), BlockWhere::Disk);
        assert_eq!(m.stats.evictions, 1);
        assert_eq!(m.stats.bytes_evicted, 10);
    }

    #[test]
    fn evict_without_spill_drops() {
        let mut m = mgr();
        m.put_memory(blk(0, 0), 10).unwrap();
        assert_eq!(m.evict(blk(0, 0), false), Some(10));
        assert_eq!(m.locate(blk(0, 0)), BlockWhere::Missing);
    }

    #[test]
    fn evict_missing_is_none() {
        let mut m = mgr();
        assert_eq!(m.evict(blk(0, 0), true), None);
        assert_eq!(m.stats.evictions, 0);
    }

    #[test]
    fn purge_clears_memory_and_disk() {
        let mut m = mgr();
        m.put_memory(blk(0, 0), 10).unwrap();
        m.disk.insert(blk(0, 0), 10);
        assert_eq!(m.purge(blk(0, 0)), 20);
        assert_eq!(m.locate(blk(0, 0)), BlockWhere::Missing);
        assert_eq!(m.stats.purges, 1);
    }

    #[test]
    fn purge_skips_pinned_memory_but_clears_disk() {
        let mut m = mgr();
        m.put_memory(blk(0, 0), 10).unwrap();
        m.memory.pin(blk(0, 0));
        m.disk.insert(blk(0, 0), 10);
        assert_eq!(m.purge(blk(0, 0)), 10); // disk copy only
        assert_eq!(m.locate(blk(0, 0)), BlockWhere::Memory);
    }

    #[test]
    fn free_fraction() {
        let mut m = mgr();
        assert_eq!(m.free_fraction(), 1.0);
        m.put_memory(blk(0, 0), 25).unwrap();
        assert!((m.free_fraction() - 0.75).abs() < 1e-12);
        let z = BlockManager::new(NodeId(1), 0);
        assert_eq!(z.free_fraction(), 0.0);
    }
}
