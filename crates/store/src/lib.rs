//! Block storage substrate: the analogue of Spark's `BlockManager` stack.
//!
//! Each worker node owns a [`BlockManager`] combining a capacity-bounded
//! [`MemoryStore`] (the cache the policies manage) and an unbounded
//! [`DiskStore`] (local spill / shuffle territory). A cluster-wide
//! [`BlockMaster`] tracks which nodes hold which blocks — the
//! `BlockManagerMaster` role in the paper's Figure 3 — so tasks and the MRD
//! prefetcher can resolve remote locations. [`CacheStats`] accounts hits,
//! misses, evictions and prefetches for the evaluation reports.
//!
//! Blocks carry no payload, only sizes: the simulator needs byte accounting,
//! not data.

pub mod disk;
pub mod manager;
pub mod master;
pub mod memory;
pub mod stats;

pub use disk::DiskStore;
pub use manager::{BlockManager, BlockWhere};
pub use master::BlockMaster;
pub use memory::{InsertError, MemoryStore};
pub use stats::CacheStats;

use std::fmt;

/// Identifier of a worker node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into dense per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}
