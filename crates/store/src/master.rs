//! Cluster-wide block location registry (Spark's `BlockManagerMaster`).
//!
//! Nodes report block placement changes here; tasks resolving a remote read
//! and the MRD prefetcher resolving a source copy query it. Each block's
//! holders are a small sorted `Vec<NodeId>` so lookups are deterministic
//! (lowest node id wins a remote-source tie, exactly as the previous
//! `BTreeSet` representation ordered them); the per-block tables are
//! [`SlotMap`]s — dense vectors when built over a [`BlockSlots`] arena
//! ([`BlockMaster::with_slots`]), hash maps otherwise.

use crate::NodeId;
use refdist_dag::{BlockId, BlockSlots, SlotMap};
use std::sync::Arc;

/// A block's holders: ascending node ids, no duplicates.
type NodeVec = Vec<NodeId>;

fn insert_node(set: &mut NodeVec, node: NodeId) {
    if let Err(pos) = set.binary_search(&node) {
        set.insert(pos, node);
    }
}

/// Tracks which nodes hold each block in memory and on disk.
#[derive(Debug, Clone)]
pub struct BlockMaster {
    memory: SlotMap<NodeVec>,
    disk: SlotMap<NodeVec>,
}

impl Default for BlockMaster {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockMaster {
    /// Empty hash-backed registry.
    pub fn new() -> Self {
        BlockMaster {
            memory: SlotMap::hashed(),
            disk: SlotMap::hashed(),
        }
    }

    /// Empty registry with dense per-slot tables over `slots`.
    pub fn with_slots(slots: Arc<BlockSlots>) -> Self {
        BlockMaster {
            memory: SlotMap::dense(Arc::clone(&slots)),
            disk: SlotMap::dense(slots),
        }
    }

    /// Adopt a newer slot-arena snapshot (streaming admission); see
    /// [`SlotMap::adopt`].
    pub fn adopt(&mut self, slots: &Arc<BlockSlots>) {
        self.memory.adopt(Arc::clone(slots));
        self.disk.adopt(Arc::clone(slots));
    }

    fn register(table: &mut SlotMap<NodeVec>, block: BlockId, node: NodeId) {
        match table.get_mut(block) {
            Some(set) => insert_node(set, node),
            None => {
                table.insert(block, vec![node]);
            }
        }
    }

    fn unregister(table: &mut SlotMap<NodeVec>, block: BlockId, node: NodeId) {
        if let Some(set) = table.get_mut(block) {
            if let Ok(pos) = set.binary_search(&node) {
                set.remove(pos);
            }
            if set.is_empty() {
                table.remove(block);
            }
        }
    }

    /// Record that `node` holds `block` in memory.
    pub fn register_memory(&mut self, block: BlockId, node: NodeId) {
        Self::register(&mut self.memory, block, node);
    }

    /// Record that `node` holds `block` on disk.
    pub fn register_disk(&mut self, block: BlockId, node: NodeId) {
        Self::register(&mut self.disk, block, node);
    }

    /// Record that `node` no longer holds `block` in memory.
    pub fn unregister_memory(&mut self, block: BlockId, node: NodeId) {
        Self::unregister(&mut self.memory, block, node);
    }

    /// Record that `node` no longer holds `block` on disk.
    pub fn unregister_disk(&mut self, block: BlockId, node: NodeId) {
        Self::unregister(&mut self.disk, block, node);
    }

    /// De-register every copy `node` held, memory and disk — the bulk form
    /// of executor loss (Spark's `removeBlockManager`). Equivalent to
    /// calling [`unregister_memory`](Self::unregister_memory) /
    /// [`unregister_disk`](Self::unregister_disk) per block the node held.
    pub fn unregister_node(&mut self, node: NodeId) {
        for table in [&mut self.memory, &mut self.disk] {
            let held: Vec<BlockId> = table
                .iter()
                .filter(|(_, set)| set.binary_search(&node).is_ok())
                .map(|(b, _)| b)
                .collect();
            for b in held {
                Self::unregister(table, b, node);
            }
        }
    }

    /// Nodes holding `block` in memory, ascending.
    pub fn memory_locations(&self, block: BlockId) -> impl Iterator<Item = NodeId> + '_ {
        self.memory.get(block).into_iter().flatten().copied()
    }

    /// Nodes holding `block` on disk, ascending.
    pub fn disk_locations(&self, block: BlockId) -> impl Iterator<Item = NodeId> + '_ {
        self.disk.get(block).into_iter().flatten().copied()
    }

    /// Whether any node holds `block` in memory.
    pub fn in_memory_anywhere(&self, block: BlockId) -> bool {
        self.memory.contains(block)
    }

    /// Every block resident in at least one node's memory, one entry per
    /// block. Dense registries iterate ascending by `BlockId` (slot order);
    /// hash-backed ones in arbitrary order — callers needing canonical order
    /// there must sort, exactly like the per-manager collection they
    /// replace.
    pub fn memory_resident(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.memory.iter().map(|(b, _)| b)
    }

    /// Whether any node holds `block` at all.
    pub fn anywhere(&self, block: BlockId) -> bool {
        self.memory.contains(block) || self.disk.contains(block)
    }

    /// Best source to read `block` from, from `reader`'s point of view:
    /// local memory, then local disk, then remote memory, then remote disk.
    /// Returns the chosen node and whether that copy is in memory.
    pub fn best_source(&self, block: BlockId, reader: NodeId) -> Option<(NodeId, bool)> {
        let mem = self.memory.get(block);
        if let Some(set) = mem {
            if set.binary_search(&reader).is_ok() {
                return Some((reader, true));
            }
        }
        let disk = self.disk.get(block);
        if let Some(set) = disk {
            if set.binary_search(&reader).is_ok() {
                return Some((reader, false));
            }
        }
        if let Some(&n) = mem.and_then(|set| set.first()) {
            return Some((n, true));
        }
        if let Some(&n) = disk.and_then(|set| set.first()) {
            return Some((n, false));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    /// Run a test body against both backings; the dense arena covers rdds
    /// 0..1 × partitions 0..4.
    fn both(f: impl Fn(BlockMaster)) {
        f(BlockMaster::new());
        let slots = Arc::new(BlockSlots::from_counts([(RddId(0), 4)]));
        f(BlockMaster::with_slots(slots));
    }

    #[test]
    fn register_and_lookup() {
        both(|mut m| {
            m.register_memory(blk(0, 0), NodeId(1));
            m.register_disk(blk(0, 0), NodeId(2));
            assert_eq!(
                m.memory_locations(blk(0, 0)).collect::<Vec<_>>(),
                vec![NodeId(1)]
            );
            assert_eq!(
                m.disk_locations(blk(0, 0)).collect::<Vec<_>>(),
                vec![NodeId(2)]
            );
            assert!(m.in_memory_anywhere(blk(0, 0)));
            assert!(m.anywhere(blk(0, 0)));
        });
    }

    #[test]
    fn unregister_cleans_up() {
        both(|mut m| {
            m.register_memory(blk(0, 0), NodeId(1));
            m.unregister_memory(blk(0, 0), NodeId(1));
            assert!(!m.in_memory_anywhere(blk(0, 0)));
            assert!(!m.anywhere(blk(0, 0)));
            // Unregistering again is harmless.
            m.unregister_memory(blk(0, 0), NodeId(1));
        });
    }

    #[test]
    fn double_register_keeps_one_entry() {
        both(|mut m| {
            m.register_memory(blk(0, 0), NodeId(1));
            m.register_memory(blk(0, 0), NodeId(1));
            assert_eq!(m.memory_locations(blk(0, 0)).count(), 1);
            m.unregister_memory(blk(0, 0), NodeId(1));
            assert!(!m.in_memory_anywhere(blk(0, 0)));
        });
    }

    #[test]
    fn best_source_prefers_local_memory() {
        both(|mut m| {
            m.register_memory(blk(0, 0), NodeId(0));
            m.register_memory(blk(0, 0), NodeId(1));
            assert_eq!(m.best_source(blk(0, 0), NodeId(1)), Some((NodeId(1), true)));
        });
    }

    #[test]
    fn best_source_prefers_local_disk_over_remote_memory() {
        both(|mut m| {
            m.register_memory(blk(0, 0), NodeId(2));
            m.register_disk(blk(0, 0), NodeId(1));
            assert_eq!(
                m.best_source(blk(0, 0), NodeId(1)),
                Some((NodeId(1), false))
            );
        });
    }

    #[test]
    fn best_source_falls_back_to_remote() {
        both(|mut m| {
            m.register_disk(blk(0, 0), NodeId(3));
            assert_eq!(
                m.best_source(blk(0, 0), NodeId(0)),
                Some((NodeId(3), false))
            );
            assert_eq!(m.best_source(blk(0, 3), NodeId(0)), None);
        });
    }

    #[test]
    fn remote_memory_beats_remote_disk() {
        both(|mut m| {
            m.register_disk(blk(0, 0), NodeId(1));
            m.register_memory(blk(0, 0), NodeId(2));
            assert_eq!(m.best_source(blk(0, 0), NodeId(0)), Some((NodeId(2), true)));
        });
    }

    #[test]
    fn memory_resident_is_deduped_across_nodes() {
        both(|mut m| {
            m.register_memory(blk(0, 1), NodeId(0));
            m.register_memory(blk(0, 1), NodeId(1));
            m.register_memory(blk(0, 0), NodeId(1));
            m.register_disk(blk(0, 2), NodeId(0)); // disk-only: not resident
            let mut got: Vec<BlockId> = m.memory_resident().collect();
            got.sort_unstable();
            assert_eq!(got, vec![blk(0, 0), blk(0, 1)]);
            m.unregister_memory(blk(0, 0), NodeId(1));
            assert_eq!(m.memory_resident().count(), 1);
        });
    }

    #[test]
    fn unregister_node_sweeps_both_tables() {
        both(|mut m| {
            m.register_memory(blk(0, 0), NodeId(1));
            m.register_memory(blk(0, 1), NodeId(1));
            m.register_memory(blk(0, 1), NodeId(2));
            m.register_disk(blk(0, 2), NodeId(1));
            m.register_disk(blk(0, 3), NodeId(2));
            m.unregister_node(NodeId(1));
            assert!(!m.anywhere(blk(0, 0)));
            assert!(!m.anywhere(blk(0, 2)));
            // Copies on surviving nodes are untouched.
            assert_eq!(
                m.memory_locations(blk(0, 1)).collect::<Vec<_>>(),
                vec![NodeId(2)]
            );
            assert_eq!(
                m.disk_locations(blk(0, 3)).collect::<Vec<_>>(),
                vec![NodeId(2)]
            );
            // Re-registration after a rejoin works as usual.
            m.register_memory(blk(0, 0), NodeId(1));
            assert!(m.in_memory_anywhere(blk(0, 0)));
        });
    }

    #[test]
    fn deterministic_remote_choice() {
        both(|mut m| {
            m.register_memory(blk(0, 0), NodeId(5));
            m.register_memory(blk(0, 0), NodeId(3));
            // Sorted holder list: the lowest node id wins.
            assert_eq!(m.best_source(blk(0, 0), NodeId(0)), Some((NodeId(3), true)));
        });
    }
}
