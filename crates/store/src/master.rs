//! Cluster-wide block location registry (Spark's `BlockManagerMaster`).
//!
//! Nodes report block placement changes here; tasks resolving a remote read
//! and the MRD prefetcher resolving a source copy query it. Locations are
//! kept in ordered sets so lookups are deterministic.

use crate::NodeId;
use refdist_dag::BlockId;
use std::collections::{BTreeSet, HashMap};

/// Tracks which nodes hold each block in memory and on disk.
#[derive(Debug, Clone, Default)]
pub struct BlockMaster {
    memory: HashMap<BlockId, BTreeSet<NodeId>>,
    disk: HashMap<BlockId, BTreeSet<NodeId>>,
}

impl BlockMaster {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `node` holds `block` in memory.
    pub fn register_memory(&mut self, block: BlockId, node: NodeId) {
        self.memory.entry(block).or_default().insert(node);
    }

    /// Record that `node` holds `block` on disk.
    pub fn register_disk(&mut self, block: BlockId, node: NodeId) {
        self.disk.entry(block).or_default().insert(node);
    }

    /// Record that `node` no longer holds `block` in memory.
    pub fn unregister_memory(&mut self, block: BlockId, node: NodeId) {
        if let Some(set) = self.memory.get_mut(&block) {
            set.remove(&node);
            if set.is_empty() {
                self.memory.remove(&block);
            }
        }
    }

    /// Record that `node` no longer holds `block` on disk.
    pub fn unregister_disk(&mut self, block: BlockId, node: NodeId) {
        if let Some(set) = self.disk.get_mut(&block) {
            set.remove(&node);
            if set.is_empty() {
                self.disk.remove(&block);
            }
        }
    }

    /// Nodes holding `block` in memory.
    pub fn memory_locations(&self, block: BlockId) -> impl Iterator<Item = NodeId> + '_ {
        self.memory.get(&block).into_iter().flatten().copied()
    }

    /// Nodes holding `block` on disk.
    pub fn disk_locations(&self, block: BlockId) -> impl Iterator<Item = NodeId> + '_ {
        self.disk.get(&block).into_iter().flatten().copied()
    }

    /// Whether any node holds `block` in memory.
    pub fn in_memory_anywhere(&self, block: BlockId) -> bool {
        self.memory.contains_key(&block)
    }

    /// Whether any node holds `block` at all.
    pub fn anywhere(&self, block: BlockId) -> bool {
        self.memory.contains_key(&block) || self.disk.contains_key(&block)
    }

    /// Best source to read `block` from, from `reader`'s point of view:
    /// local memory, then local disk, then remote memory, then remote disk.
    /// Returns the chosen node and whether that copy is in memory.
    pub fn best_source(&self, block: BlockId, reader: NodeId) -> Option<(NodeId, bool)> {
        let mem = self.memory.get(&block);
        if let Some(set) = mem {
            if set.contains(&reader) {
                return Some((reader, true));
            }
        }
        if let Some(set) = self.disk.get(&block) {
            if set.contains(&reader) {
                return Some((reader, false));
            }
        }
        if let Some(set) = mem {
            if let Some(&n) = set.iter().next() {
                return Some((n, true));
            }
        }
        if let Some(set) = self.disk.get(&block) {
            if let Some(&n) = set.iter().next() {
                return Some((n, false));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    #[test]
    fn register_and_lookup() {
        let mut m = BlockMaster::new();
        m.register_memory(blk(0, 0), NodeId(1));
        m.register_disk(blk(0, 0), NodeId(2));
        assert_eq!(
            m.memory_locations(blk(0, 0)).collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
        assert_eq!(
            m.disk_locations(blk(0, 0)).collect::<Vec<_>>(),
            vec![NodeId(2)]
        );
        assert!(m.in_memory_anywhere(blk(0, 0)));
        assert!(m.anywhere(blk(0, 0)));
    }

    #[test]
    fn unregister_cleans_up() {
        let mut m = BlockMaster::new();
        m.register_memory(blk(0, 0), NodeId(1));
        m.unregister_memory(blk(0, 0), NodeId(1));
        assert!(!m.in_memory_anywhere(blk(0, 0)));
        assert!(!m.anywhere(blk(0, 0)));
        // Unregistering again is harmless.
        m.unregister_memory(blk(0, 0), NodeId(1));
    }

    #[test]
    fn best_source_prefers_local_memory() {
        let mut m = BlockMaster::new();
        m.register_memory(blk(0, 0), NodeId(0));
        m.register_memory(blk(0, 0), NodeId(1));
        assert_eq!(m.best_source(blk(0, 0), NodeId(1)), Some((NodeId(1), true)));
    }

    #[test]
    fn best_source_prefers_local_disk_over_remote_memory() {
        let mut m = BlockMaster::new();
        m.register_memory(blk(0, 0), NodeId(2));
        m.register_disk(blk(0, 0), NodeId(1));
        assert_eq!(
            m.best_source(blk(0, 0), NodeId(1)),
            Some((NodeId(1), false))
        );
    }

    #[test]
    fn best_source_falls_back_to_remote() {
        let mut m = BlockMaster::new();
        m.register_disk(blk(0, 0), NodeId(3));
        assert_eq!(
            m.best_source(blk(0, 0), NodeId(0)),
            Some((NodeId(3), false))
        );
        assert_eq!(m.best_source(blk(9, 9), NodeId(0)), None);
    }

    #[test]
    fn remote_memory_beats_remote_disk() {
        let mut m = BlockMaster::new();
        m.register_disk(blk(0, 0), NodeId(1));
        m.register_memory(blk(0, 0), NodeId(2));
        assert_eq!(m.best_source(blk(0, 0), NodeId(0)), Some((NodeId(2), true)));
    }

    #[test]
    fn deterministic_remote_choice() {
        let mut m = BlockMaster::new();
        m.register_memory(blk(0, 0), NodeId(5));
        m.register_memory(blk(0, 0), NodeId(3));
        // BTreeSet ordering: the lowest node id wins.
        assert_eq!(m.best_source(blk(0, 0), NodeId(0)), Some((NodeId(3), true)));
    }
}
