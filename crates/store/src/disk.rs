//! Unbounded local disk store.
//!
//! Holds spilled cache blocks (`MEMORY_AND_DISK` evictions) and materialized
//! shuffle output markers. Capacity is not modelled — the paper's testbed
//! gives each node 200 GB of disk against 8 GB of RAM, so disk space is never
//! the binding constraint; disk *bandwidth* is, and that lives in the
//! cluster simulator's FIFO resources.

use refdist_dag::BlockId;
use std::collections::HashMap;

/// Set of blocks present on a node's local disk, with sizes.
#[derive(Debug, Clone, Default)]
pub struct DiskStore {
    blocks: HashMap<BlockId, u64>,
    bytes: u64,
}

impl DiskStore {
    /// Empty disk store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `block` is on disk.
    #[inline]
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains_key(&block)
    }

    /// Size of a stored block.
    #[inline]
    pub fn size_of(&self, block: BlockId) -> Option<u64> {
        self.blocks.get(&block).copied()
    }

    /// Store a block (idempotent).
    pub fn insert(&mut self, block: BlockId, size: u64) {
        if self.blocks.insert(block, size).is_none() {
            self.bytes += size;
        }
    }

    /// Remove a block, returning its size.
    pub fn remove(&mut self, block: BlockId) -> Option<u64> {
        let size = self.blocks.remove(&block);
        if let Some(s) = size {
            self.bytes -= s;
        }
        size
    }

    /// Remove every stored block (node failure), returning them sorted.
    pub fn drain(&mut self) -> Vec<(BlockId, u64)> {
        let mut all: Vec<(BlockId, u64)> = self.blocks.drain().collect();
        all.sort_unstable();
        self.bytes = 0;
        all
    }

    /// Number of stored blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total bytes stored.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refdist_dag::RddId;

    fn blk(r: u32, p: u32) -> BlockId {
        BlockId::new(RddId(r), p)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut d = DiskStore::new();
        d.insert(blk(1, 0), 64);
        assert!(d.contains(blk(1, 0)));
        assert_eq!(d.size_of(blk(1, 0)), Some(64));
        assert_eq!(d.bytes(), 64);
        assert_eq!(d.remove(blk(1, 0)), Some(64));
        assert!(d.is_empty());
        assert_eq!(d.bytes(), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut d = DiskStore::new();
        d.insert(blk(1, 0), 64);
        d.insert(blk(1, 0), 64);
        assert_eq!(d.len(), 1);
        assert_eq!(d.bytes(), 64);
    }

    #[test]
    fn drain_empties_disk() {
        let mut d = DiskStore::new();
        d.insert(blk(2, 0), 5);
        d.insert(blk(1, 0), 7);
        assert_eq!(d.drain(), vec![(blk(1, 0), 7), (blk(2, 0), 5)]);
        assert!(d.is_empty());
        assert_eq!(d.bytes(), 0);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut d = DiskStore::new();
        assert_eq!(d.remove(blk(9, 9)), None);
    }
}
