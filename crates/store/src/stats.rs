//! Cache statistics, per node and aggregated.

/// Counters a `CacheMonitor` reports to the manager (`reportCacheStatus` in
/// the paper's Table 2) and the evaluation reads out at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served from memory.
    pub hits: u64,
    /// Of those hits, how many were served from a *remote* node's memory.
    pub remote_hits: u64,
    /// Of those hits, how many were satisfied by a prefetched block.
    pub prefetch_hits: u64,
    /// Accesses that missed memory.
    pub misses: u64,
    /// Of the misses, how many found the block on local disk.
    pub disk_hits: u64,
    /// Of the misses, how many had to recompute from lineage.
    pub recomputes: u64,
    /// Blocks evicted under memory pressure.
    pub evictions: u64,
    /// Blocks evicted by cluster-wide purge orders (infinite distance).
    pub purges: u64,
    /// Bytes evicted (pressure + purge).
    pub bytes_evicted: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Prefetched blocks that were evicted before ever being used.
    pub wasted_prefetches: u64,
    /// Blocks lost to injected node failures.
    pub lost_blocks: u64,
    /// Eviction victims selected by the policy that were not actually
    /// evictable (not resident / pinned). Each one aborts the insert that
    /// triggered the pressure event; a nonzero count means the policy's
    /// bookkeeping diverged from the store and is surfaced in the run
    /// report so the failure is diagnosable in release builds.
    pub bad_victims: u64,
}

impl CacheStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses to cached-RDD blocks.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Memory hit ratio in `[0, 1]`; 1.0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            1.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Field-wise difference `self - earlier`. Counters are monotonic, so
    /// this yields the activity between two snapshots of one store — the
    /// serve driver uses it to attribute a shared node's counters to the
    /// application whose stage just ran.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            remote_hits: self.remote_hits - earlier.remote_hits,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            misses: self.misses - earlier.misses,
            disk_hits: self.disk_hits - earlier.disk_hits,
            recomputes: self.recomputes - earlier.recomputes,
            evictions: self.evictions - earlier.evictions,
            purges: self.purges - earlier.purges,
            bytes_evicted: self.bytes_evicted - earlier.bytes_evicted,
            prefetches: self.prefetches - earlier.prefetches,
            wasted_prefetches: self.wasted_prefetches - earlier.wasted_prefetches,
            lost_blocks: self.lost_blocks - earlier.lost_blocks,
            bad_victims: self.bad_victims - earlier.bad_victims,
        }
    }

    /// Merge another node's counters into this aggregate.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.remote_hits += other.remote_hits;
        self.prefetch_hits += other.prefetch_hits;
        self.misses += other.misses;
        self.disk_hits += other.disk_hits;
        self.recomputes += other.recomputes;
        self.evictions += other.evictions;
        self.purges += other.purges;
        self.bytes_evicted += other.bytes_evicted;
        self.prefetches += other.prefetches;
        self.wasted_prefetches += other.wasted_prefetches;
        self.lost_blocks += other.lost_blocks;
        self.bad_victims += other.bad_victims;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_basics() {
        let mut s = CacheStats::new();
        assert_eq!(s.hit_ratio(), 1.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = CacheStats {
            hits: 1,
            remote_hits: 1,
            prefetch_hits: 1,
            misses: 2,
            disk_hits: 1,
            recomputes: 1,
            evictions: 3,
            purges: 1,
            bytes_evicted: 100,
            prefetches: 4,
            wasted_prefetches: 1,
            lost_blocks: 2,
            bad_victims: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 4);
        assert_eq!(a.bytes_evicted, 200);
        assert_eq!(a.wasted_prefetches, 2);
        assert_eq!(a.lost_blocks, 4);
        assert_eq!(a.bad_victims, 2);
    }

    #[test]
    fn delta_inverts_merge() {
        let a = CacheStats {
            hits: 1,
            remote_hits: 1,
            prefetch_hits: 1,
            misses: 2,
            disk_hits: 1,
            recomputes: 1,
            evictions: 3,
            purges: 1,
            bytes_evicted: 100,
            prefetches: 4,
            wasted_prefetches: 1,
            lost_blocks: 2,
            bad_victims: 1,
        };
        let mut later = a;
        later.merge(&a);
        assert_eq!(later.delta(&a), a);
        assert_eq!(a.delta(&a), CacheStats::default());
    }
}
