//! Property tests for the block-storage layer: byte accounting and the
//! pin/reserve rules must survive arbitrary operation sequences.

use proptest::prelude::*;
use refdist_dag::{BlockId, RddId};
use refdist_store::{BlockMaster, InsertError, MemoryStore, NodeId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u64),
    Remove(u8),
    Pin(u8),
    Unpin(u8),
    Reserve(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u64..64).prop_map(|(b, s)| Op::Insert(b, s)),
        any::<u8>().prop_map(Op::Remove),
        any::<u8>().prop_map(Op::Pin),
        any::<u8>().prop_map(Op::Unpin),
        (0u64..256).prop_map(Op::Reserve),
    ]
}

fn blk(b: u8) -> BlockId {
    BlockId::new(RddId(b as u32 % 16), b as u32 / 16)
}

proptest! {
    #[test]
    fn memory_store_accounting_invariants(
        capacity in 0u64..256,
        ops in prop::collection::vec(op_strategy(), 0..200),
    ) {
        let mut store = MemoryStore::new(capacity);
        // Shadow model: block -> size, plus pin counts.
        let mut model: HashMap<BlockId, u64> = HashMap::new();
        let mut pins: HashMap<BlockId, u32> = HashMap::new();
        let mut reserved = 0u64;

        for op in ops {
            match op {
                Op::Insert(b, size) => {
                    let b = blk(b);
                    let already = model.contains_key(&b);
                    match store.insert(b, size) {
                        Ok(()) => {
                            if !already {
                                // Must have fit in the free span, which
                                // saturates when a reservation overlaps
                                // resident blocks.
                                let free = capacity
                                    .saturating_sub(model.values().sum::<u64>() + reserved);
                                prop_assert!(size <= free);
                                model.insert(b, size);
                            }
                        }
                        Err(InsertError::TooLarge) => {
                            prop_assert!(size > capacity);
                            prop_assert!(!already);
                        }
                        Err(InsertError::NeedsEviction { shortfall }) => {
                            prop_assert!(!already);
                            let free = capacity
                                .saturating_sub(model.values().sum::<u64>() + reserved);
                            prop_assert_eq!(shortfall, size - free);
                        }
                    }
                }
                Op::Remove(b) => {
                    let b = blk(b);
                    if pins.contains_key(&b) {
                        continue; // removing pinned blocks panics by design
                    }
                    let removed = store.remove(b);
                    prop_assert_eq!(removed, model.remove(&b));
                }
                Op::Pin(b) => {
                    let b = blk(b);
                    if model.contains_key(&b) {
                        store.pin(b);
                        *pins.entry(b).or_insert(0) += 1;
                    }
                }
                Op::Unpin(b) => {
                    let b = blk(b);
                    if let Some(c) = pins.get_mut(&b) {
                        store.unpin(b);
                        *c -= 1;
                        if *c == 0 {
                            pins.remove(&b);
                        }
                    }
                }
                Op::Reserve(r) => {
                    store.set_reserved(r);
                    reserved = r.min(capacity);
                }
            }
            // Core invariants after every step.
            let used: u64 = model.values().sum();
            prop_assert_eq!(store.used(), used);
            prop_assert_eq!(store.len(), model.len());
            prop_assert_eq!(store.free(), capacity.saturating_sub(used + reserved));
            prop_assert!(store.used() + store.free() <= capacity);
            for (&b, &s) in &model {
                prop_assert_eq!(store.size_of(b), Some(s));
            }
            for &b in pins.keys() {
                prop_assert!(store.is_pinned(b));
            }
            // Evictable excludes exactly the pinned blocks.
            let evictable = store.evictable().count();
            prop_assert_eq!(evictable, model.len() - pins.len());
        }
    }

    #[test]
    fn block_master_tracks_registrations(
        events in prop::collection::vec((any::<u8>(), 0u32..4, any::<bool>(), any::<bool>()), 0..200),
    ) {
        // (block, node, memory?, register?)
        let mut master = BlockMaster::new();
        let mut mem: HashMap<(BlockId, NodeId), ()> = HashMap::new();
        let mut disk: HashMap<(BlockId, NodeId), ()> = HashMap::new();
        for (b, n, memory, reg) in events {
            let b = blk(b);
            let n = NodeId(n);
            match (memory, reg) {
                (true, true) => {
                    master.register_memory(b, n);
                    mem.insert((b, n), ());
                }
                (true, false) => {
                    master.unregister_memory(b, n);
                    mem.remove(&(b, n));
                }
                (false, true) => {
                    master.register_disk(b, n);
                    disk.insert((b, n), ());
                }
                (false, false) => {
                    master.unregister_disk(b, n);
                    disk.remove(&(b, n));
                }
            }
            prop_assert_eq!(
                master.in_memory_anywhere(b),
                mem.keys().any(|(bb, _)| *bb == b)
            );
            prop_assert_eq!(
                master.anywhere(b),
                mem.keys().any(|(bb, _)| *bb == b) || disk.keys().any(|(bb, _)| *bb == b)
            );
            // best_source prefers local memory > local disk > remote memory
            // > remote disk, and returns None iff the block is nowhere.
            match master.best_source(b, n) {
                None => prop_assert!(!master.anywhere(b)),
                Some((src, in_mem)) => {
                    if in_mem {
                        prop_assert!(mem.contains_key(&(b, src)));
                    } else {
                        prop_assert!(disk.contains_key(&(b, src)));
                        // If it chose disk at a remote node, there is no
                        // memory copy anywhere and no local disk copy...
                        if src != n {
                            prop_assert!(!mem.keys().any(|(bb, _)| *bb == b));
                            prop_assert!(!disk.contains_key(&(b, n)));
                        }
                    }
                    if mem.contains_key(&(b, n)) {
                        prop_assert_eq!((src, in_mem), (n, true));
                    }
                }
            }
        }
    }
}
