//! Batch summaries of samples.

/// Summary statistics of a sample batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (lower of the two middles for even n).
    pub median: f64,
}

impl Summary {
    /// Summarize a slice of samples. Returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: sorted[(n - 1) / 2],
        })
    }
}

/// Geometric mean of positive samples; `None` if empty or any sample <= 0.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(geomean(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn geomean_of_powers() {
        let g = geomean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!(geomean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn median_odd() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }
}
