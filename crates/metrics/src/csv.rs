//! Minimal CSV output for experiment data series.

use std::fmt::Write as _;

/// Builds CSV text with proper quoting of commas, quotes and newlines.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    out: String,
    columns: usize,
}

impl CsvWriter {
    /// New writer with a header row.
    pub fn new<S: AsRef<str>>(header: impl IntoIterator<Item = S>) -> Self {
        let mut w = CsvWriter {
            out: String::new(),
            columns: 0,
        };
        let cells: Vec<String> = header
            .into_iter()
            .map(|c| Self::escape(c.as_ref()))
            .collect();
        w.columns = cells.len();
        w.out.push_str(&cells.join(","));
        w.out.push('\n');
        w
    }

    fn escape(cell: &str) -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics on a cell-count mismatch with the header.
    pub fn row<S: AsRef<str>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells
            .into_iter()
            .map(|c| Self::escape(c.as_ref()))
            .collect();
        assert_eq!(cells.len(), self.columns, "csv row width mismatch");
        let _ = writeln!(self.out, "{}", cells.join(","));
        self
    }

    /// The CSV text.
    pub fn finish(&self) -> &str {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_rows() {
        let mut w = CsvWriter::new(["a", "b"]);
        w.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(w.finish(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn quoting() {
        let mut w = CsvWriter::new(["x"]);
        w.row(["hello, world"]).row(["say \"hi\""]);
        assert_eq!(w.finish(), "x\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::new(["a", "b"]);
        w.row(["1"]);
    }
}
