//! Fixed-width text tables for experiment output.

use std::fmt::Write as _;

/// A simple right-padded text table builder.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", c, width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a byte count as a human-friendly string (e.g. `2.4 G`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "K", "M", "G", "T"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "name    value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "a       1");
        assert_eq!(lines[3], "longer  22");
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 K");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0 M");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 G");
    }
}
