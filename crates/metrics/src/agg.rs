//! Order-restoring aggregation for parallel producers.
//!
//! Worker pools complete items in a nondeterministic order; reports must not
//! inherit that order. An [`OrderedSink`] accepts `(key, value)` pairs as
//! they finish and yields the values sorted by key, so aggregated output is
//! identical no matter how the work was scheduled.

/// Collects keyed results in completion order, emits them in key order.
#[derive(Debug, Clone)]
pub struct OrderedSink<K: Ord, V> {
    items: Vec<(K, V)>,
}

impl<K: Ord, V> OrderedSink<K, V> {
    /// An empty sink.
    pub fn new() -> Self {
        OrderedSink { items: Vec::new() }
    }

    /// An empty sink with room for `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        OrderedSink {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Record one completed item under its canonical key.
    pub fn push(&mut self, key: K, value: V) {
        self.items.push((key, value));
    }

    /// Number of items recorded so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All values in ascending key order (stable for equal keys).
    pub fn into_ordered(self) -> Vec<V> {
        self.into_pairs_ordered().into_iter().map(|(_, v)| v).collect()
    }

    /// All `(key, value)` pairs in ascending key order (stable for equal
    /// keys).
    pub fn into_pairs_ordered(mut self) -> Vec<(K, V)> {
        self.items.sort_by(|a, b| a.0.cmp(&b.0));
        self.items
    }
}

impl<K: Ord, V> Default for OrderedSink<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restores_key_order() {
        let mut s = OrderedSink::new();
        for (k, v) in [(2usize, "c"), (0, "a"), (3, "d"), (1, "b")] {
            s.push(k, v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.into_ordered(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let mut s = OrderedSink::new();
        s.push(1, "first");
        s.push(0, "zero");
        s.push(1, "second");
        assert_eq!(s.into_ordered(), vec!["zero", "first", "second"]);
    }

    #[test]
    fn pairs_keep_keys() {
        let mut s = OrderedSink::with_capacity(2);
        assert!(s.is_empty());
        s.push("b", 2);
        s.push("a", 1);
        assert_eq!(s.into_pairs_ordered(), vec![("a", 1), ("b", 2)]);
    }
}
