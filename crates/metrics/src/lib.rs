//! Metrics and reporting utilities for the evaluation harness.

pub mod agg;
pub mod chart;
pub mod csv;
pub mod regression;
pub mod summary;
pub mod table;

pub use agg::OrderedSink;
pub use chart::BarChart;
pub use csv::CsvWriter;
pub use regression::{linear_fit, LinearFit};
pub use summary::{geomean, Summary};
pub use table::{human_bytes, TextTable};
