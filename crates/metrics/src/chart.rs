//! Terminal bar charts for experiment output.
//!
//! The paper's figures are bar charts; a horizontal ASCII rendering makes
//! the regenerated series legible straight from the experiment binaries.

use std::fmt::Write as _;

/// A horizontal bar chart with labelled rows.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    rows: Vec<(String, f64)>,
    /// Maximum bar width in characters.
    width: usize,
    /// Fixed value scale; `None` auto-scales to the maximum value.
    max_value: Option<f64>,
}

impl BarChart {
    /// New chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            rows: Vec::new(),
            width: 40,
            max_value: None,
        }
    }

    /// Set the maximum bar width in characters (default 40).
    pub fn width(mut self, chars: usize) -> Self {
        self.width = chars.max(1);
        self
    }

    /// Pin the value that corresponds to a full-width bar (e.g. `1.0` for
    /// normalized JCTs so different charts are comparable).
    pub fn scale_to(mut self, max_value: f64) -> Self {
        self.max_value = Some(max_value);
        self
    }

    /// Append a row. Negative values are clamped to zero.
    pub fn row(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.rows.push((label.into(), value.max(0.0)));
        self
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        if self.rows.is_empty() {
            return out;
        }
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .max_value
            .unwrap_or_else(|| self.rows.iter().map(|(_, v)| *v).fold(0.0, f64::max))
            .max(f64::MIN_POSITIVE);
        for (label, value) in &self.rows {
            let frac = (value / max).clamp(0.0, 1.0);
            let filled = (frac * self.width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{label:<label_w$} |{}{} {value:.2}",
                "█".repeat(filled),
                " ".repeat(self.width - filled),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("test").width(10).scale_to(1.0);
        c.row("a", 1.0).row("bb", 0.5).row("c", 0.0);
        let out = c.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "test");
        assert!(lines[1].starts_with("a  |██████████"));
        assert!(lines[2].starts_with("bb |█████     "));
        assert!(lines[3].contains("| "));
        assert!(lines[3].ends_with("0.00"));
    }

    #[test]
    fn auto_scales_to_max() {
        let mut c = BarChart::new("").width(4);
        c.row("x", 2.0).row("y", 4.0);
        let out = c.render();
        assert!(out.contains("y |████"));
        assert!(out.contains("x |██  "));
    }

    #[test]
    fn clamps_overflow_and_negatives() {
        let mut c = BarChart::new("t").width(4).scale_to(1.0);
        c.row("over", 2.0).row("neg", -1.0);
        let out = c.render();
        assert!(out.contains("over |████ 2.00"));
        assert!(out.contains("neg  |     0.00"));
    }

    #[test]
    fn empty_chart_is_title_only() {
        assert_eq!(BarChart::new("only").render(), "only\n");
    }
}
