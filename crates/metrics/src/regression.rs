//! Ordinary least squares linear regression with R².
//!
//! Used to regenerate the trendlines of the paper's Figures 11 and 12
//! (performance vs average stage distance, R²=0.46; performance vs average
//! references per stage, R²=0.71).

/// A fitted line `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y = a + b x` by OLS. Returns `None` for fewer than 2 points or a
/// degenerate (constant-x) sample.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let syy: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let r2 = if syy == 0.0 {
        1.0 // constant y: the fit is exact
    } else {
        let ss_res: f64 = points
            .iter()
            .map(|p| {
                let e = p.1 - (intercept + slope * p.0);
                e * e
            })
            .sum();
        1.0 - ss_res / syy
    };
    Some(LinearFit {
        intercept,
        slope,
        r2,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_has_r2_one() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_partial_r2() {
        let pts = [(0.0, 0.0), (1.0, 1.5), (2.0, 1.8), (3.0, 3.3), (4.0, 3.9)];
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.slope > 0.0);
        assert!(fit.r2 > 0.8 && fit.r2 < 1.0);
    }

    #[test]
    fn degenerate_cases() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        // Constant x: vertical line cannot be fit.
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn constant_y_is_perfect_flat_fit() {
        let fit = linear_fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn anticorrelated_slope_is_negative() {
        let pts: Vec<(f64, f64)> = (0..8).map(|i| (i as f64, -(i as f64) + 0.1)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.slope < 0.0);
    }
}
