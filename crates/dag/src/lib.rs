//! Spark-like RDD lineage and DAG scheduling model.
//!
//! This crate rebuilds, in miniature, the part of Apache Spark the MRD paper
//! depends on: RDDs with narrow and shuffle (wide) dependencies, actions that
//! split a program into jobs, and the DAGScheduler algorithm that splits jobs
//! into stages at shuffle boundaries with sequentially increasing stage IDs.
//!
//! On top of the structural model it provides [`analyze::RefAnalyzer`], which
//! walks the planned application and extracts, for every cached RDD, the
//! ordered list of stages and jobs that reference it — the raw material for
//! reference-distance policies (MRD), reference-count policies (LRC), and
//! the workload characterizations in the paper's Tables 1 and 3.
//!
//! # Example
//!
//! ```
//! use refdist_dag::{AppBuilder, AppPlan, RefAnalyzer};
//!
//! // A two-job program: a cached dataset aggregated twice.
//! let mut b = AppBuilder::new("demo");
//! let input = b.input("hdfs", 4, 1 << 20, 1_000);
//! let data = b.narrow("data", input, 1 << 20, 2_000);
//! b.cache(data);
//! for i in 0..2 {
//!     let agg = b.shuffle(format!("agg{i}"), &[data], 4, 1 << 10, 500);
//!     b.action(format!("job{i}"), agg);
//! }
//! let spec = b.build();
//!
//! let plan = AppPlan::build(&spec);
//! assert_eq!(plan.jobs.len(), 2);
//! assert_eq!(plan.active_stage_count(), 4); // map+result per job
//!
//! let profile = RefAnalyzer::new(&spec, &plan).profile();
//! // `data` is created in job 0's map stage and re-read in job 1's.
//! assert_eq!(profile.refs(data).unwrap().count(), 2);
//! ```

pub mod analyze;
pub mod app;
pub mod capacity;
pub mod dot;
pub mod ids;
pub mod plan;
pub mod rdd;
pub mod slots;
pub mod template;
pub mod tenant;

pub use analyze::{
    AppProfile, DistanceStats, RddRefs, RefAnalyzer, StageTouches, WorkloadCharacteristics,
};
pub use app::{Action, AppBuilder, AppSpec};
pub use capacity::LiveSetProfile;
pub use ids::{BlockId, JobId, RddId, StageId};
pub use plan::{AppPlan, JobPlan, Stage, StageKind};
pub use rdd::{Dependency, Rdd, StorageLevel};
pub use slots::{BlockSlots, SlotArena, SlotMap, SlotSet};
pub use template::{PlannedTemplate, TemplateCache};
pub use tenant::{combine_specs, remap_plan, remap_profile, shift_rdd, TenantMap};
