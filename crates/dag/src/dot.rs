//! Graphviz DOT export of application DAGs, for inspection and docs.

use crate::app::AppSpec;
use crate::plan::AppPlan;
use std::fmt::Write;

/// Render the RDD lineage graph as DOT. Cached RDDs are drawn filled; shuffle
/// dependencies are drawn as bold edges.
pub fn lineage_dot(spec: &AppSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", spec.name);
    let _ = writeln!(out, "  rankdir=BT; node [shape=box, fontsize=10];");
    for rdd in &spec.rdds {
        let style = if rdd.is_cached() {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  r{} [label=\"{} ({})\"{}];",
            rdd.id.0, rdd.name, rdd.id, style
        );
    }
    for rdd in &spec.rdds {
        for dep in &rdd.deps {
            let attr = if dep.is_shuffle() {
                " [style=bold, color=red, label=\"shuffle\"]"
            } else {
                ""
            };
            let _ = writeln!(out, "  r{} -> r{}{};", dep.parent().0, rdd.id.0, attr);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the stage DAG (one cluster per job) as DOT.
pub fn stage_dot(spec: &AppSpec, plan: &AppPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}-stages\" {{", spec.name);
    let _ = writeln!(out, "  rankdir=BT; node [shape=ellipse, fontsize=10];");
    for job in plan.jobs.iter() {
        let _ = writeln!(out, "  subgraph cluster_j{} {{", job.id.0);
        let _ = writeln!(out, "    label=\"{} ({})\";", job.action, job.id);
        for &sid in &job.stages {
            let stage = plan.stage(sid);
            if stage.job == job.id {
                let _ = writeln!(
                    out,
                    "    s{} [label=\"{}\\n{}\"];",
                    sid.0,
                    sid,
                    spec.rdd(stage.final_rdd).name
                );
            }
        }
        let _ = writeln!(out, "  }}");
    }
    for stage in &plan.stages {
        for &p in stage.parents.iter() {
            let _ = writeln!(out, "  s{} -> s{};", p.0, stage.id.0);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;

    fn spec() -> AppSpec {
        let mut b = AppBuilder::new("dotty");
        let input = b.input("in", 2, 10, 1);
        let m = b.narrow("m", input, 10, 1);
        b.cache(m);
        let s = b.shuffle("s", &[m], 2, 10, 1);
        b.action("count", s);
        b.build()
    }

    #[test]
    fn lineage_dot_mentions_all_rdds_and_shuffles() {
        let d = lineage_dot(&spec());
        assert!(d.contains("digraph \"dotty\""));
        assert!(d.contains("r0 -> r1"));
        assert!(d.contains("shuffle"));
        assert!(d.contains("lightblue")); // cached m
    }

    #[test]
    fn stage_dot_clusters_by_job() {
        let s = spec();
        let plan = AppPlan::build(&s);
        let d = stage_dot(&s, &plan);
        assert!(d.contains("cluster_j0"));
        assert!(d.contains("s0 -> s1"));
    }

    #[test]
    fn dot_output_is_balanced() {
        let s = spec();
        let d = lineage_dot(&s);
        assert_eq!(d.matches('{').count(), d.matches('}').count());
    }
}
