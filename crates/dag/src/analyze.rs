//! DAG reference analysis.
//!
//! Walks the planned application in execution order and records, for every
//! cached RDD, the ordered list of (stage, job) points at which the running
//! application will touch its blocks — its *reference profile*. This is the
//! information the paper's `AppProfiler` extracts by parsing the DAG (§4.2,
//! `parseDAG`), and from which:
//!
//! * MRD derives reference *distances* (gap to the next reference),
//! * LRC derives reference *counts*,
//! * Table 1 derives per-workload average/maximum stage and job distances,
//! * Table 3 derives the workload characteristics columns.
//!
//! A stage "references" a cached RDD when its pipelined traversal reads it:
//! traversal starts at the stage's final RDD, descends through narrow
//! dependencies, stops at shuffle boundaries (those are read from shuffle
//! files, not the cache), and stops below cached RDDs that already exist —
//! the stage reads them from the cache instead of recomputing their lineage.
//! Creating a cached RDD counts as its first reference.

use crate::app::AppSpec;
use crate::ids::{JobId, RddId, StageId};
use crate::plan::{AppPlan, StageKind};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Reference profile of one cached RDD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RddRefs {
    /// The cached RDD.
    pub rdd: RddId,
    /// Stages that reference it, ascending (first entry is its creation).
    /// Shared (`Arc`): stage IDs are app-local, so tenant remapping rebases
    /// the `rdd` key without cloning the reference lists.
    pub stages: Arc<[StageId]>,
    /// Jobs of those stages (parallel to `stages`, non-decreasing).
    pub jobs: Arc<[JobId]>,
}

impl RddRefs {
    /// Number of references (creation included).
    pub fn count(&self) -> usize {
        self.stages.len()
    }

    /// Consecutive stage-distance gaps between references.
    pub fn stage_gaps(&self) -> impl Iterator<Item = u32> + '_ {
        self.stages.windows(2).map(|w| w[1].0 - w[0].0)
    }

    /// Consecutive job-distance gaps between references.
    pub fn job_gaps(&self) -> impl Iterator<Item = u32> + '_ {
        self.jobs.windows(2).map(|w| w[1].0 - w[0].0)
    }

    /// The next reference at or after `stage`, if any.
    pub fn next_ref_at_or_after(&self, stage: StageId) -> Option<StageId> {
        let i = self.stages.partition_point(|&s| s < stage);
        self.stages.get(i).copied()
    }
}

/// Per-stage view: which cached RDDs a stage reads and creates.
#[derive(Debug, Clone, Default)]
pub struct StageTouches {
    /// Cached RDDs read from the cache by this stage.
    pub reads: Vec<RddId>,
    /// Cached RDDs materialized (computed and inserted) by this stage.
    pub creates: Vec<RddId>,
}

/// The whole-application reference profile.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Per cached RDD, its ordered reference points.
    pub per_rdd: BTreeMap<RddId, RddRefs>,
    /// Per stage (indexed by `StageId`), the cached RDDs it touches.
    pub per_stage: Vec<StageTouches>,
    /// Job of each stage, indexed by `StageId`. Shared (`Arc`): neither
    /// stage nor job IDs shift under tenant remapping.
    pub stage_job: Arc<[JobId]>,
    /// Number of jobs in the application.
    pub num_jobs: usize,
}

impl AppProfile {
    /// Reference points of one RDD, if it is cached.
    pub fn refs(&self, rdd: RddId) -> Option<&RddRefs> {
        self.per_rdd.get(&rdd)
    }

    /// Total reference count across all cached RDDs.
    pub fn total_references(&self) -> usize {
        self.per_rdd.values().map(|r| r.count()).sum()
    }

    /// Restrict the profile to stages whose job is `<= job` — what an ad-hoc
    /// (non-recurring) run knows after that job's DAG has been submitted
    /// (paper §4.1, second modus operandi).
    pub fn visible_up_to_job(&self, job: JobId) -> AppProfile {
        let per_rdd = self
            .per_rdd
            .iter()
            .filter_map(|(&rdd, r)| {
                let keep: Vec<usize> = (0..r.stages.len()).filter(|&i| r.jobs[i] <= job).collect();
                if keep.is_empty() {
                    return None;
                }
                Some((
                    rdd,
                    RddRefs {
                        rdd,
                        stages: keep.iter().map(|&i| r.stages[i]).collect(),
                        jobs: keep.iter().map(|&i| r.jobs[i]).collect(),
                    },
                ))
            })
            .collect();
        let visible_stages = self
            .stage_job
            .iter()
            .position(|&j| j > job)
            .unwrap_or(self.stage_job.len());
        AppProfile {
            per_rdd,
            per_stage: self.per_stage[..visible_stages].to_vec(),
            stage_job: Arc::from(&self.stage_job[..visible_stages]),
            num_jobs: (job.0 as usize + 1).min(self.num_jobs),
        }
    }
}

/// Reference-distance statistics over a profile (paper Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceStats {
    /// Mean of job-distance gaps between consecutive references.
    pub avg_job: f64,
    /// Maximum job-distance gap.
    pub max_job: u32,
    /// Mean of stage-distance gaps between consecutive references.
    pub avg_stage: f64,
    /// Maximum stage-distance gap.
    pub max_stage: u32,
    /// Number of gaps the averages are taken over.
    pub num_gaps: usize,
}

/// Workload characteristics (paper Table 3 columns derivable from the DAG).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadCharacteristics {
    /// Number of jobs.
    pub jobs: usize,
    /// Total stage appearances across job DAGs ("Stages").
    pub stages: usize,
    /// Distinct stages that execute ("Active Stages").
    pub active_stages: usize,
    /// Number of RDDs in the lineage graph.
    pub rdds: usize,
    /// Mean references per cached RDD.
    pub refs_per_rdd: f64,
    /// Total references divided by active stages.
    pub refs_per_stage: f64,
    /// Bytes read from external storage ("Data Input Size").
    pub input_bytes: u64,
    /// Approximate bytes read by all active stages ("Total Stage Inputs").
    pub stage_input_bytes: u64,
    /// Approximate shuffle bytes written (= read) across the run.
    pub shuffle_bytes: u64,
}

/// Extracts reference profiles and workload statistics from a planned app.
pub struct RefAnalyzer<'a> {
    spec: &'a AppSpec,
    plan: &'a AppPlan,
}

impl<'a> RefAnalyzer<'a> {
    /// Create an analyzer over a spec and its plan.
    pub fn new(spec: &'a AppSpec, plan: &'a AppPlan) -> Self {
        RefAnalyzer { spec, plan }
    }

    /// Compute the whole-application reference profile.
    pub fn profile(&self) -> AppProfile {
        // Reference lists grow as stages are walked, so accumulate in plain
        // vectors and freeze into the shared `Arc` slices at the end.
        let mut growing: BTreeMap<RddId, (Vec<StageId>, Vec<JobId>)> = BTreeMap::new();
        let mut per_stage = Vec::with_capacity(self.plan.stages.len());
        let mut created: HashSet<RddId> = HashSet::new();

        // Stage-ID order is execution order (see plan.rs module docs).
        for stage in &self.plan.stages {
            let mut touches = StageTouches::default();
            let mut visited = HashSet::new();
            let mut stack = vec![stage.final_rdd];
            while let Some(v) = stack.pop() {
                if !visited.insert(v) {
                    continue;
                }
                let rdd = self.spec.rdd(v);
                if rdd.is_cached() {
                    let entry = growing.entry(v).or_default();
                    entry.0.push(stage.id);
                    entry.1.push(stage.job);
                    if created.contains(&v) {
                        // Cache hit at plan level: do not descend further.
                        touches.reads.push(v);
                        continue;
                    }
                    created.insert(v);
                    touches.creates.push(v);
                    // Fall through: the stage must compute it this time.
                }
                for p in rdd.narrow_parents().collect::<Vec<_>>().into_iter().rev() {
                    stack.push(p);
                }
            }
            per_stage.push(touches);
        }
        AppProfile {
            per_rdd: growing
                .into_iter()
                .map(|(rdd, (stages, jobs))| {
                    (
                        rdd,
                        RddRefs {
                            rdd,
                            stages: stages.into(),
                            jobs: jobs.into(),
                        },
                    )
                })
                .collect(),
            per_stage,
            stage_job: self.plan.stages.iter().map(|s| s.job).collect(),
            num_jobs: self.plan.jobs.len(),
        }
    }

    /// Table 1 statistics for a profile.
    pub fn distance_stats(profile: &AppProfile) -> DistanceStats {
        let mut sum_job = 0u64;
        let mut sum_stage = 0u64;
        let mut max_job = 0u32;
        let mut max_stage = 0u32;
        let mut n = 0usize;
        for refs in profile.per_rdd.values() {
            for g in refs.job_gaps() {
                sum_job += g as u64;
                max_job = max_job.max(g);
                n += 1;
            }
            for g in refs.stage_gaps() {
                sum_stage += g as u64;
                max_stage = max_stage.max(g);
            }
        }
        let denom = if n == 0 { 1.0 } else { n as f64 };
        DistanceStats {
            avg_job: sum_job as f64 / denom,
            max_job,
            avg_stage: sum_stage as f64 / denom,
            max_stage,
            num_gaps: n,
        }
    }

    /// Table 3 characteristics.
    pub fn characteristics(&self, profile: &AppProfile) -> WorkloadCharacteristics {
        let cached = self.spec.cached_rdds().count().max(1);
        let total_refs = profile.total_references();
        let active = self.plan.active_stage_count().max(1);

        let mut stage_input = 0u64;
        let mut shuffle = 0u64;
        for stage in &self.plan.stages {
            // Bytes this stage reads: external inputs and cached reads in its
            // pipelined set, plus shuffle reads from its parents.
            for &r in &stage.rdds {
                let rdd = self.spec.rdd(r);
                if rdd.is_input() {
                    stage_input += rdd.total_size();
                }
            }
            for &r in &profile.per_stage[stage.id.index()].reads {
                stage_input += self.spec.rdd(r).total_size();
            }
            for &p in stage.parents.iter() {
                let map_rdd = self.plan.stage(p).final_rdd;
                stage_input += self.spec.rdd(map_rdd).total_size();
            }
            if let StageKind::ShuffleMap { .. } = stage.kind {
                shuffle += self.spec.rdd(stage.final_rdd).total_size();
            }
        }
        WorkloadCharacteristics {
            jobs: self.plan.jobs.len(),
            stages: self.plan.total_stage_appearances(),
            active_stages: self.plan.active_stage_count(),
            rdds: self.spec.rdds.len(),
            refs_per_rdd: total_refs as f64 / cached as f64,
            refs_per_stage: total_refs as f64 / active as f64,
            input_bytes: self.spec.input_bytes(),
            stage_input_bytes: stage_input,
            shuffle_bytes: shuffle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;

    /// Iterative pattern: cached `data` referenced by each of 3 jobs.
    fn iterative() -> (AppSpec, AppPlan) {
        let mut b = AppBuilder::new("iter");
        let input = b.input("in", 4, 100, 10);
        let data = b.narrow("data", input, 100, 10);
        b.cache(data);
        for i in 0..3 {
            let work = b.shuffle(format!("agg{i}"), &[data], 4, 50, 10);
            b.action(format!("job{i}"), work);
        }
        let spec = b.build();
        let plan = AppPlan::build(&spec);
        (spec, plan)
    }

    #[test]
    fn iterative_profile_has_one_ref_per_job() {
        let (spec, plan) = iterative();
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let data = RddId(1);
        let refs = profile.refs(data).unwrap();
        // Created in job 0's map stage, then read by job 1 and job 2's map
        // stages (job 1/2's result stages read shuffle files, not the cache).
        assert_eq!(refs.count(), 3);
        assert_eq!(&*refs.jobs, &[JobId(0), JobId(1), JobId(2)]);
        // Stage ids: job0 = [0 map, 1 result], job1 = [2 map, 3 result], ...
        assert_eq!(&*refs.stages, &[StageId(0), StageId(2), StageId(4)]);
    }

    #[test]
    fn distance_stats_from_gaps() {
        let (spec, plan) = iterative();
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let stats = RefAnalyzer::distance_stats(&profile);
        assert_eq!(stats.num_gaps, 2);
        assert!((stats.avg_stage - 2.0).abs() < 1e-9);
        assert_eq!(stats.max_stage, 2);
        assert!((stats.avg_job - 1.0).abs() < 1e-9);
        assert_eq!(stats.max_job, 1);
    }

    #[test]
    fn uncached_rdds_have_no_profile() {
        let (spec, plan) = iterative();
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        assert!(profile.refs(RddId(0)).is_none()); // input not cached
        assert_eq!(profile.per_rdd.len(), 1);
    }

    #[test]
    fn creation_recorded_once_then_reads() {
        let (spec, plan) = iterative();
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let creates: Vec<_> = profile
            .per_stage
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.creates.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(creates, vec![0]);
        let reads: Vec<_> = profile
            .per_stage
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.reads.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(reads, vec![2, 4]);
    }

    #[test]
    fn cached_child_truncates_ancestor_reference() {
        // input -> a(cached) -> b(cached) -> shuffles in 2 jobs.
        // After b exists, later stages read b and must NOT reference a.
        let mut bld = AppBuilder::new("trunc");
        let input = bld.input("in", 2, 100, 10);
        let a = bld.narrow("a", input, 100, 10);
        bld.cache(a);
        let b = bld.narrow("b", a, 100, 10);
        bld.cache(b);
        for i in 0..2 {
            let s = bld.shuffle(format!("s{i}"), &[b], 2, 10, 1);
            bld.action(format!("j{i}"), s);
        }
        let spec = bld.build();
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        // a referenced only at creation (stage 0); b at creation + job 1.
        assert_eq!(profile.refs(a).unwrap().count(), 1);
        assert_eq!(profile.refs(b).unwrap().count(), 2);
    }

    #[test]
    fn visible_up_to_job_truncates_future() {
        let (spec, plan) = iterative();
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let v0 = profile.visible_up_to_job(JobId(0));
        assert_eq!(v0.refs(RddId(1)).unwrap().count(), 1);
        assert_eq!(v0.stage_job.len(), 2); // only job 0's stages visible
        let v1 = profile.visible_up_to_job(JobId(1));
        assert_eq!(v1.refs(RddId(1)).unwrap().count(), 2);
        // Full visibility reproduces the original.
        let v2 = profile.visible_up_to_job(JobId(2));
        assert_eq!(v2.refs(RddId(1)), profile.refs(RddId(1)));
    }

    #[test]
    fn next_ref_lookup() {
        let refs = RddRefs {
            rdd: RddId(0),
            stages: vec![StageId(2), StageId(5), StageId(9)].into(),
            jobs: vec![JobId(0), JobId(1), JobId(2)].into(),
        };
        assert_eq!(refs.next_ref_at_or_after(StageId(0)), Some(StageId(2)));
        assert_eq!(refs.next_ref_at_or_after(StageId(2)), Some(StageId(2)));
        assert_eq!(refs.next_ref_at_or_after(StageId(3)), Some(StageId(5)));
        assert_eq!(refs.next_ref_at_or_after(StageId(10)), None);
    }

    #[test]
    fn characteristics_counts() {
        let (spec, plan) = iterative();
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let ch = RefAnalyzer::new(&spec, &plan).characteristics(&profile);
        assert_eq!(ch.jobs, 3);
        assert_eq!(ch.active_stages, 6);
        assert_eq!(ch.rdds, 5);
        assert_eq!(ch.input_bytes, 400);
        assert!((ch.refs_per_rdd - 3.0).abs() < 1e-9); // 3 refs / 1 cached
        assert!((ch.refs_per_stage - 0.5).abs() < 1e-9); // 3 refs / 6 stages
                                                         // 3 map stages each write their map-side output (`data`, 400 bytes).
        assert_eq!(ch.shuffle_bytes, 1200);
    }

    #[test]
    fn empty_gap_stats_are_zero() {
        // Single job, cached RDD referenced once: no gaps.
        let mut b = AppBuilder::new("single");
        let input = b.input("in", 2, 100, 10);
        let d = b.narrow("d", input, 100, 10);
        b.cache(d);
        b.action("count", d);
        let spec = b.build();
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let stats = RefAnalyzer::distance_stats(&profile);
        assert_eq!(stats.num_gaps, 0);
        assert_eq!(stats.avg_stage, 0.0);
        assert_eq!(stats.max_stage, 0);
    }
}
