//! Typed identifiers for RDDs, jobs, stages and blocks.
//!
//! Newtype wrappers prevent mixing up the many small integers that flow
//! through the scheduler; all are dense indices assigned in creation order,
//! which is what gives stage and job IDs their "sequentially numbered"
//! property the paper's reference distances rely on (§3.2).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into dense per-kind tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifier of an RDD, assigned in program order.
    RddId,
    "rdd"
);
id_type!(
    /// Identifier of a job (one per action), assigned in submission order.
    JobId,
    "job"
);
id_type!(
    /// Identifier of a stage, assigned in DAGScheduler creation order
    /// (parents before children, increasing across jobs).
    StageId,
    "stage"
);

/// A data block: one partition of one RDD. The unit of caching and eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// Owning RDD.
    pub rdd: RddId,
    /// Partition index within the RDD.
    pub partition: u32,
}

impl BlockId {
    /// Construct a block id.
    #[inline]
    pub fn new(rdd: RddId, partition: u32) -> Self {
        BlockId { rdd, partition }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.rdd, self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(RddId(3).to_string(), "rdd3");
        assert_eq!(JobId(0).to_string(), "job0");
        assert_eq!(StageId(12).to_string(), "stage12");
        assert_eq!(BlockId::new(RddId(3), 7).to_string(), "rdd3_7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(StageId(1) < StageId(2));
        assert!(BlockId::new(RddId(1), 9) < BlockId::new(RddId(2), 0));
    }

    #[test]
    fn ids_are_distinct_types() {
        // (compile-time property; just exercise From and index here)
        let r: RddId = 5u32.into();
        assert_eq!(r.index(), 5);
    }
}
