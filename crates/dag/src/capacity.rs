//! Cache-capacity analysis: how much memory would a workload need for a
//! fully-hitting run?
//!
//! A cached RDD is *live* from the stage that creates it through the stage
//! of its last reference; afterwards an optimal policy discards it. The
//! peak of the live-set size over the execution is therefore the minimum
//! cluster-wide cache capacity with which a clairvoyant policy never
//! misses — the provisioning number behind the paper's cache-savings
//! observation (§5.6: MRD reaches a target hit ratio with a fraction of
//! LRU's cache).

use crate::analyze::AppProfile;
use crate::app::AppSpec;
use crate::ids::StageId;

/// The live-set profile of an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveSetProfile {
    /// Live cached bytes during each stage, indexed by `StageId`.
    pub per_stage: Vec<u64>,
    /// Peak live bytes.
    pub peak_bytes: u64,
    /// First stage at which the peak occurs.
    pub peak_stage: StageId,
    /// Total bytes ever cached (the footprint an eviction-free run needs).
    pub total_bytes: u64,
}

impl LiveSetProfile {
    /// Compute the live-set profile from a reference profile.
    pub fn compute(spec: &AppSpec, profile: &AppProfile) -> LiveSetProfile {
        let stages = profile.per_stage.len();
        // Differential array: +size at creation, -size after last reference.
        let mut delta = vec![0i128; stages + 1];
        let mut total = 0u64;
        for refs in profile.per_rdd.values() {
            let size = spec.rdd(refs.rdd).total_size();
            total += size;
            let created = refs.stages[0].index();
            let last = refs.stages[refs.stages.len() - 1].index();
            delta[created] += size as i128;
            delta[last + 1] -= size as i128;
        }
        let mut per_stage = Vec::with_capacity(stages);
        let mut live = 0i128;
        let mut peak = 0u64;
        let mut peak_stage = StageId(0);
        for (s, d) in delta.iter().take(stages).enumerate() {
            live += d;
            debug_assert!(live >= 0, "live set went negative at stage {s}");
            let bytes = live as u64;
            if bytes > peak {
                peak = bytes;
                peak_stage = StageId(s as u32);
            }
            per_stage.push(bytes);
        }
        LiveSetProfile {
            per_stage,
            peak_bytes: peak,
            peak_stage,
            total_bytes: total,
        }
    }

    /// Fraction of the total footprint the peak live set occupies — how
    /// much cache an optimal policy saves relative to keeping everything.
    pub fn optimal_savings(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            1.0 - self.peak_bytes as f64 / self.total_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::RefAnalyzer;
    use crate::app::AppBuilder;
    use crate::plan::AppPlan;

    /// Two cached RDDs with disjoint live ranges: a lives stages 0..=2,
    /// b lives 3..=5 (roughly), so the peak is far below the total.
    fn phased() -> (AppSpec, AppProfile) {
        let mut bld = AppBuilder::new("phased");
        let input = bld.input("in", 2, 100, 10);
        let a = bld.narrow("a", input, 100, 10);
        bld.cache(a);
        let b = bld.narrow("b", input, 100, 10);
        bld.cache(b);
        for i in 0..2 {
            let s = bld.shuffle(format!("pa{i}"), &[a], 2, 10, 1);
            bld.action(format!("ja{i}"), s);
        }
        for i in 0..2 {
            let s = bld.shuffle(format!("pb{i}"), &[b], 2, 10, 1);
            bld.action(format!("jb{i}"), s);
        }
        let spec = bld.build();
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        (spec, profile)
    }

    #[test]
    fn disjoint_phases_peak_below_total() {
        let (spec, profile) = phased();
        let live = LiveSetProfile::compute(&spec, &profile);
        assert_eq!(live.total_bytes, 400); // both RDDs, 2 blocks of 100 each
                                           // a dies before b's phase begins... a is created in job ja0's map
                                           // stage together with... check the key property: the peak is less
                                           // than the total (the phases do not fully overlap).
        assert!(live.peak_bytes < live.total_bytes);
        assert!(live.optimal_savings() > 0.0);
        // Live bytes are zero once everything is dead.
        assert_eq!(*live.per_stage.last().unwrap(), 0);
    }

    #[test]
    fn always_live_rdd_peaks_at_total() {
        let mut bld = AppBuilder::new("hot");
        let input = bld.input("in", 2, 100, 10);
        let d = bld.narrow("d", input, 100, 10);
        bld.cache(d);
        for i in 0..3 {
            let s = bld.shuffle(format!("s{i}"), &[d], 2, 10, 1);
            bld.action(format!("j{i}"), s);
        }
        let spec = bld.build();
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let live = LiveSetProfile::compute(&spec, &profile);
        assert_eq!(live.peak_bytes, 200);
        assert_eq!(live.total_bytes, 200);
        assert_eq!(live.optimal_savings(), 0.0);
        // Live from creation through the last referencing stage.
        assert!(live.per_stage.iter().filter(|&&b| b > 0).count() >= 4);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let mut bld = AppBuilder::new("uncached");
        let input = bld.input("in", 2, 100, 10);
        let s = bld.shuffle("s", &[input], 2, 10, 1);
        bld.action("j", s);
        let spec = bld.build();
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let live = LiveSetProfile::compute(&spec, &profile);
        assert_eq!(live.peak_bytes, 0);
        assert_eq!(live.total_bytes, 0);
        assert!(live.per_stage.iter().all(|&b| b == 0));
    }

    #[test]
    fn per_stage_length_matches_plan() {
        let (spec, profile) = phased();
        let live = LiveSetProfile::compute(&spec, &profile);
        assert_eq!(live.per_stage.len(), profile.per_stage.len());
        assert!(live.peak_stage.index() < live.per_stage.len());
        assert_eq!(live.per_stage[live.peak_stage.index()], live.peak_bytes);
    }
}
