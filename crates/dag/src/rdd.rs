//! RDDs and their dependencies.

use crate::ids::RddId;

/// How an RDD depends on a parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dependency {
    /// Narrow dependency: each child partition reads a bounded set of parent
    /// partitions (modelled as one-to-one). Narrow chains pipeline inside a
    /// single stage.
    Narrow(RddId),
    /// Wide (shuffle) dependency: every child partition reads from all parent
    /// partitions. Forces a stage boundary.
    Shuffle(RddId),
}

impl Dependency {
    /// The parent RDD this dependency points at.
    #[inline]
    pub fn parent(self) -> RddId {
        match self {
            Dependency::Narrow(p) | Dependency::Shuffle(p) => p,
        }
    }

    /// Whether this is a shuffle (wide) dependency.
    #[inline]
    pub fn is_shuffle(self) -> bool {
        matches!(self, Dependency::Shuffle(_))
    }
}

/// Persistence level for a cached RDD, mirroring Spark's `StorageLevel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageLevel {
    /// Not persisted: recomputed on every use.
    #[default]
    None,
    /// Cached in memory only; evicted blocks are dropped and recomputed on
    /// the next miss (Spark's `MEMORY_ONLY`, the `.cache()` default).
    MemoryOnly,
    /// Cached in memory, spilled to local disk on eviction
    /// (Spark's `MEMORY_AND_DISK`).
    MemoryAndDisk,
}

impl StorageLevel {
    /// Whether the RDD participates in the block cache at all.
    #[inline]
    pub fn is_cached(self) -> bool {
        !matches!(self, StorageLevel::None)
    }

    /// Whether evicted blocks survive on local disk.
    #[inline]
    pub fn spills_to_disk(self) -> bool {
        matches!(self, StorageLevel::MemoryAndDisk)
    }
}

/// One RDD: a named, partitioned dataset plus the lineage to rebuild it.
#[derive(Debug, Clone)]
pub struct Rdd {
    /// Identifier (index into [`crate::AppSpec::rdds`]).
    pub id: RddId,
    /// Human-readable name (e.g. `"ranks_iter3"`).
    pub name: String,
    /// Number of partitions; each partition is one block.
    pub num_partitions: u32,
    /// Size of each partition block, in bytes.
    pub block_size: u64,
    /// Compute cost to produce one partition from its (already available)
    /// inputs, in microseconds.
    pub compute_us: u64,
    /// Persistence level (set by the program's `.cache()`/`.persist()`).
    pub storage: StorageLevel,
    /// Dependencies on parent RDDs. Empty for input RDDs, which are read
    /// from external storage (HDFS in the paper's testbed).
    pub deps: Vec<Dependency>,
}

impl Rdd {
    /// Whether this RDD is read directly from external storage.
    #[inline]
    pub fn is_input(&self) -> bool {
        self.deps.is_empty()
    }

    /// Whether the program asked for this RDD to be cached.
    #[inline]
    pub fn is_cached(&self) -> bool {
        self.storage.is_cached()
    }

    /// Total dataset size across partitions, in bytes.
    #[inline]
    pub fn total_size(&self) -> u64 {
        self.block_size * self.num_partitions as u64
    }

    /// Parent RDDs reached through narrow dependencies.
    pub fn narrow_parents(&self) -> impl Iterator<Item = RddId> + '_ {
        self.deps
            .iter()
            .filter(|d| !d.is_shuffle())
            .map(|d| d.parent())
    }

    /// Parent RDDs reached through shuffle dependencies.
    pub fn shuffle_parents(&self) -> impl Iterator<Item = RddId> + '_ {
        self.deps
            .iter()
            .filter(|d| d.is_shuffle())
            .map(|d| d.parent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rdd {
        Rdd {
            id: RddId(2),
            name: "joined".into(),
            num_partitions: 4,
            block_size: 100,
            compute_us: 10,
            storage: StorageLevel::MemoryOnly,
            deps: vec![Dependency::Narrow(RddId(0)), Dependency::Shuffle(RddId(1))],
        }
    }

    #[test]
    fn dependency_accessors() {
        let d = Dependency::Shuffle(RddId(9));
        assert!(d.is_shuffle());
        assert_eq!(d.parent(), RddId(9));
        assert!(!Dependency::Narrow(RddId(1)).is_shuffle());
    }

    #[test]
    fn storage_level_flags() {
        assert!(!StorageLevel::None.is_cached());
        assert!(StorageLevel::MemoryOnly.is_cached());
        assert!(!StorageLevel::MemoryOnly.spills_to_disk());
        assert!(StorageLevel::MemoryAndDisk.spills_to_disk());
    }

    #[test]
    fn rdd_parent_partitions() {
        let r = sample();
        assert!(!r.is_input());
        assert!(r.is_cached());
        assert_eq!(r.total_size(), 400);
        assert_eq!(r.narrow_parents().collect::<Vec<_>>(), vec![RddId(0)]);
        assert_eq!(r.shuffle_parents().collect::<Vec<_>>(), vec![RddId(1)]);
    }

    #[test]
    fn input_rdd_has_no_deps() {
        let mut r = sample();
        r.deps.clear();
        assert!(r.is_input());
    }
}
