//! Multi-tenant application combination.
//!
//! The serve mode (crates/cluster) runs a *stream* of applications on one
//! shared cluster. Rather than teaching every layer of the stack about
//! multiple RDD namespaces, the submissions are concatenated into one
//! combined [`AppSpec`] whose RDD ids are offset per submission, so block
//! ids stay globally unique and the stores, block master and slot arena
//! work unchanged. This module owns that translation:
//!
//! * [`combine_specs`] builds the combined spec (a 1-submission combine is
//!   the identity, which is what the differential serve tests lean on);
//! * [`remap_plan`] / [`remap_profile`] shift a submission's *locally*
//!   built plan and reference profile into the combined RDD space, so
//!   reference-distance policies see exactly the profile they would have
//!   seen running the app alone;
//! * [`TenantMap`] answers "which submission / tenant owns this RDD?" —
//!   the primitive quota accounting and tenant-aware eviction are built on.

use crate::analyze::{AppProfile, RddRefs, StageTouches};
use crate::app::{Action, AppSpec};
use crate::ids::RddId;
use crate::plan::{AppPlan, Stage, StageKind};
use crate::rdd::{Dependency, Rdd};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Ownership map for a combined application: which submission each RDD of
/// the combined spec came from, and which tenant each submission belongs
/// to. Submissions are contiguous, ascending RDD ranges, so lookups are a
/// partition point over the range starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantMap {
    /// `starts[i]` is the first combined RddId of submission `retired + i`.
    starts: Vec<u32>,
    /// `tenants[i]` is the tenant that owns submission `retired + i`.
    tenants: Vec<u32>,
    /// One past the last RddId of the last submission.
    total: u32,
    /// Leading submissions whose bookkeeping [`retire_prefix`]
    /// (Self::retire_prefix) has dropped. Submission indices stay global —
    /// accessors offset into the remaining suffix — but the per-submission
    /// vectors only hold `first_live()..num_apps()`, keeping a long-stream
    /// map O(active) instead of O(total submissions).
    retired: usize,
}

impl TenantMap {
    /// Build a map from per-submission RDD counts and tenant ids.
    pub fn new(rdd_counts: &[u32], tenants: &[u32]) -> TenantMap {
        assert_eq!(rdd_counts.len(), tenants.len());
        assert!(!rdd_counts.is_empty(), "at least one submission");
        let mut starts = Vec::with_capacity(rdd_counts.len());
        let mut at = 0u32;
        for &n in rdd_counts {
            starts.push(at);
            at += n;
        }
        TenantMap {
            starts,
            tenants: tenants.to_vec(),
            total: at,
            retired: 0,
        }
    }

    /// Number of submissions (retired prefix included — indices are global).
    #[inline]
    pub fn num_apps(&self) -> usize {
        self.retired + self.starts.len()
    }

    /// First submission whose bookkeeping is still held.
    #[inline]
    pub fn first_live(&self) -> usize {
        self.retired
    }

    /// Drop the bookkeeping of submissions `..first_live` (streaming serve:
    /// every lower submission has retired and purged its blocks, so no
    /// lookup for them can occur again). Amortized O(1) per submission.
    pub fn retire_prefix(&mut self, first_live: usize) {
        assert!(first_live < self.num_apps(), "the last submission stays");
        if first_live <= self.retired {
            return;
        }
        let k = first_live - self.retired;
        self.starts.drain(..k);
        self.tenants.drain(..k);
        self.retired = first_live;
    }

    /// Number of distinct tenants (`max tenant id + 1`). Only meaningful
    /// before any [`retire_prefix`](Self::retire_prefix).
    pub fn num_tenants(&self) -> usize {
        self.tenants.iter().copied().max().unwrap_or(0) as usize + 1
    }

    /// The submission that owns `rdd`, which must not belong to a retired
    /// prefix.
    #[inline]
    pub fn app_of(&self, rdd: RddId) -> usize {
        debug_assert!(rdd.0 < self.total);
        debug_assert!(
            self.starts.first().is_some_and(|&s| s <= rdd.0),
            "rdd of a retired submission"
        );
        self.retired + self.starts.partition_point(|&s| s <= rdd.0) - 1
    }

    /// The tenant of submission `app`.
    #[inline]
    pub fn tenant_of_app(&self, app: usize) -> u32 {
        self.tenants[app - self.retired]
    }

    /// The tenant that owns `rdd`.
    #[inline]
    pub fn tenant_of(&self, rdd: RddId) -> u32 {
        self.tenants[self.app_of(rdd) - self.retired]
    }

    /// The RDD-id offset of submission `app` in the combined spec.
    #[inline]
    pub fn offset(&self, app: usize) -> u32 {
        self.starts[app - self.retired]
    }

    /// The combined RddId range of submission `app`.
    pub fn rdd_range(&self, app: usize) -> std::ops::Range<u32> {
        let i = app - self.retired;
        let end = self.starts.get(i + 1).copied().unwrap_or(self.total);
        self.starts[i]..end
    }
}

#[inline]
fn shift(r: RddId, offset: u32) -> RddId {
    RddId(r.0 + offset)
}

fn shift_dep(d: Dependency, offset: u32) -> Dependency {
    match d {
        Dependency::Narrow(p) => Dependency::Narrow(shift(p, offset)),
        Dependency::Shuffle(p) => Dependency::Shuffle(shift(p, offset)),
    }
}

/// Clone `r` with its id and lineage shifted into the combined RDD space.
/// Streaming admission uses this to splice one submission's RDDs into the
/// engine's live registry without materializing the whole combined spec.
pub fn shift_rdd(r: &Rdd, offset: u32) -> Rdd {
    Rdd {
        id: shift(r.id, offset),
        name: r.name.clone(),
        num_partitions: r.num_partitions,
        block_size: r.block_size,
        compute_us: r.compute_us,
        storage: r.storage,
        deps: r.deps.iter().map(|&d| shift_dep(d, offset)).collect(),
    }
}

/// Concatenate submissions into one combined spec, offsetting each
/// submission's RDD ids past the previous submissions'. Dependencies and
/// action targets are remapped, so the combined spec validates; within a
/// submission the lineage is untouched. Combining a single spec yields a
/// clone of it (identity).
pub fn combine_specs(subs: &[&AppSpec]) -> AppSpec {
    assert!(!subs.is_empty(), "at least one submission");
    if subs.len() == 1 {
        return subs[0].clone();
    }
    let name = subs
        .iter()
        .map(|s| s.name.as_str())
        .collect::<Vec<_>>()
        .join("+");
    let mut rdds = Vec::with_capacity(subs.iter().map(|s| s.rdds.len()).sum());
    let mut actions = Vec::with_capacity(subs.iter().map(|s| s.actions.len()).sum());
    let mut offset = 0u32;
    for sub in subs {
        for r in &sub.rdds {
            rdds.push(shift_rdd(r, offset));
        }
        for a in &sub.actions {
            actions.push(Action {
                target: shift(a.target, offset),
                name: a.name.clone(),
            });
        }
        offset += sub.rdds.len() as u32;
    }
    let combined = AppSpec {
        name,
        rdds,
        actions,
    };
    debug_assert_eq!(combined.validate(), Ok(()));
    combined
}

/// Shift a submission's locally built plan into the combined RDD space.
/// Only RDD ids move; stage and job ids stay local to the submission (the
/// serve driver runs each submission's stages through its own plan).
///
/// Copy-on-rebase: the parts that never shift — the whole job list and each
/// stage's parent list — are shared with the source plan (`Arc` bump), so a
/// rebase copies only the per-stage RDD sets. At offset 0 the entire plan is
/// shared, making single-submission serve and submission 0 free.
pub fn remap_plan(plan: &Arc<AppPlan>, offset: u32) -> Arc<AppPlan> {
    if offset == 0 {
        return Arc::clone(plan);
    }
    Arc::new(AppPlan {
        stages: plan
            .stages
            .iter()
            .map(|s| Stage {
                id: s.id,
                job: s.job,
                final_rdd: shift(s.final_rdd, offset),
                kind: match s.kind {
                    StageKind::ShuffleMap { child } => StageKind::ShuffleMap {
                        child: shift(child, offset),
                    },
                    StageKind::Result => StageKind::Result,
                },
                rdds: s.rdds.iter().map(|&r| shift(r, offset)).collect(),
                parents: Arc::clone(&s.parents),
                num_tasks: s.num_tasks,
            })
            .collect(),
        jobs: Arc::clone(&plan.jobs),
    })
}

/// Shift a submission's locally built reference profile into the combined
/// RDD space. Stage and job ids stay local, matching [`remap_plan`]; the
/// policies driven by this profile therefore see exactly the reference
/// distances the app would have alone.
///
/// Copy-on-rebase, like [`remap_plan`]: the per-RDD stage/job reference
/// lists and the stage→job table are shared with the source profile (`Arc`
/// bump — stage and job ids never shift); only the map keys and the
/// per-stage touch sets, which hold RDD ids, are rebuilt. Offset 0 shares
/// the whole profile.
pub fn remap_profile(profile: &Arc<AppProfile>, offset: u32) -> Arc<AppProfile> {
    if offset == 0 {
        return Arc::clone(profile);
    }
    let per_rdd: BTreeMap<RddId, RddRefs> = profile
        .per_rdd
        .iter()
        .map(|(&r, refs)| {
            (
                shift(r, offset),
                RddRefs {
                    rdd: shift(refs.rdd, offset),
                    stages: Arc::clone(&refs.stages),
                    jobs: Arc::clone(&refs.jobs),
                },
            )
        })
        .collect();
    Arc::new(AppProfile {
        per_rdd,
        per_stage: profile
            .per_stage
            .iter()
            .map(|t| StageTouches {
                reads: t.reads.iter().map(|&r| shift(r, offset)).collect(),
                creates: t.creates.iter().map(|&r| shift(r, offset)).collect(),
            })
            .collect(),
        stage_job: Arc::clone(&profile.stage_job),
        num_jobs: profile.num_jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::RefAnalyzer;
    use crate::app::AppBuilder;

    fn little_app(name: &str, iters: usize) -> AppSpec {
        let mut b = AppBuilder::new(name);
        let input = b.input("hdfs", 4, 1 << 20, 1_000);
        let data = b.narrow("data", input, 1 << 20, 2_000);
        b.cache(data);
        for i in 0..iters {
            let agg = b.shuffle(format!("agg{i}"), &[data], 4, 1 << 10, 500);
            b.action(format!("job{i}"), agg);
        }
        b.build()
    }

    #[test]
    fn single_submission_combine_is_identity() {
        let a = little_app("solo", 2);
        let c = combine_specs(&[&a]);
        assert_eq!(format!("{a:?}"), format!("{c:?}"));
        let plan = Arc::new(AppPlan::build(&a));
        assert_eq!(format!("{plan:?}"), format!("{:?}", remap_plan(&plan, 0)));
        let profile = Arc::new(RefAnalyzer::new(&a, &plan).profile());
        assert_eq!(
            format!("{profile:?}"),
            format!("{:?}", remap_profile(&profile, 0))
        );
        // Zero offset does not copy: the remapped artifacts are the same
        // allocations, not equal clones.
        assert!(Arc::ptr_eq(&plan, &remap_plan(&plan, 0)));
        assert!(Arc::ptr_eq(&profile, &remap_profile(&profile, 0)));
    }

    #[test]
    fn combined_spec_validates_and_offsets_lineage() {
        let a = little_app("a", 2);
        let b = little_app("b", 3);
        let c = combine_specs(&[&a, &b]);
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.name, "a+b");
        assert_eq!(c.rdds.len(), a.rdds.len() + b.rdds.len());
        assert_eq!(c.actions.len(), a.actions.len() + b.actions.len());
        let off = a.rdds.len() as u32;
        // b's lineage is shifted wholesale: same structure, offset ids.
        for (orig, shifted) in b.rdds.iter().zip(&c.rdds[a.rdds.len()..]) {
            assert_eq!(shifted.id.0, orig.id.0 + off);
            assert_eq!(shifted.name, orig.name);
            for (d0, d1) in orig.deps.iter().zip(&shifted.deps) {
                assert_eq!(d1.parent().0, d0.parent().0 + off);
                assert_eq!(d1.is_shuffle(), d0.is_shuffle());
            }
        }
    }

    #[test]
    fn tenant_map_partitions_the_rdd_space() {
        let m = TenantMap::new(&[4, 6, 2], &[0, 1, 0]);
        assert_eq!(m.num_apps(), 3);
        assert_eq!(m.num_tenants(), 2);
        assert_eq!(m.offset(0), 0);
        assert_eq!(m.offset(1), 4);
        assert_eq!(m.offset(2), 10);
        assert_eq!(m.rdd_range(0), 0..4);
        assert_eq!(m.rdd_range(1), 4..10);
        assert_eq!(m.rdd_range(2), 10..12);
        assert_eq!(m.app_of(RddId(0)), 0);
        assert_eq!(m.app_of(RddId(3)), 0);
        assert_eq!(m.app_of(RddId(4)), 1);
        assert_eq!(m.app_of(RddId(9)), 1);
        assert_eq!(m.app_of(RddId(10)), 2);
        assert_eq!(m.app_of(RddId(11)), 2);
        assert_eq!(m.tenant_of(RddId(5)), 1);
        assert_eq!(m.tenant_of(RddId(11)), 0);
        assert_eq!(m.tenant_of_app(1), 1);
    }

    #[test]
    fn retire_prefix_keeps_global_indices() {
        let mut m = TenantMap::new(&[4, 6, 2, 3], &[0, 1, 0, 1]);
        let full = m.clone();
        m.retire_prefix(0); // no-op
        assert_eq!(m, full);
        m.retire_prefix(2);
        assert_eq!(m.first_live(), 2);
        assert_eq!(m.num_apps(), 4);
        // Accessors agree with the uncompacted map on every live lookup.
        for app in 2..4 {
            assert_eq!(m.offset(app), full.offset(app));
            assert_eq!(m.rdd_range(app), full.rdd_range(app));
            assert_eq!(m.tenant_of_app(app), full.tenant_of_app(app));
        }
        for rdd in 10..15 {
            assert_eq!(m.app_of(RddId(rdd)), full.app_of(RddId(rdd)));
            assert_eq!(m.tenant_of(RddId(rdd)), full.tenant_of(RddId(rdd)));
        }
        // Re-retiring below the window is a no-op.
        m.retire_prefix(1);
        assert_eq!(m.first_live(), 2);
        m.retire_prefix(3);
        assert_eq!(m.rdd_range(3), 12..15);
        assert_eq!(m.app_of(RddId(14)), 3);
    }

    #[test]
    fn shift_rdd_offsets_id_and_lineage() {
        let a = little_app("a", 1);
        let agg = &a.rdds[2];
        let s = shift_rdd(agg, 10);
        assert_eq!(s.id.0, agg.id.0 + 10);
        assert_eq!(s.name, agg.name);
        for (d0, d1) in agg.deps.iter().zip(&s.deps) {
            assert_eq!(d1.parent().0, d0.parent().0 + 10);
            assert_eq!(d1.is_shuffle(), d0.is_shuffle());
        }
        // Offset 0 is the identity.
        assert_eq!(format!("{:?}", shift_rdd(agg, 0)), format!("{agg:?}"));
    }

    #[test]
    fn remapped_profile_matches_local_references() {
        let b = little_app("b", 2);
        let plan = AppPlan::build(&b);
        let local = Arc::new(RefAnalyzer::new(&b, &plan).profile());
        let off = 7u32;
        let shifted = remap_profile(&local, off);
        assert_eq!(shifted.num_jobs, local.num_jobs);
        assert_eq!(shifted.stage_job, local.stage_job);
        for (r, refs) in &local.per_rdd {
            let s = &shifted.per_rdd[&RddId(r.0 + off)];
            assert_eq!(s.rdd.0, r.0 + off);
            assert_eq!(s.stages, refs.stages);
            assert_eq!(s.jobs, refs.jobs);
            // The reference lists are shared, not copied.
            assert!(Arc::ptr_eq(&s.stages, &refs.stages));
            assert!(Arc::ptr_eq(&s.jobs, &refs.jobs));
        }
        for (t0, t1) in local.per_stage.iter().zip(&shifted.per_stage) {
            assert_eq!(
                t1.reads.iter().map(|r| r.0).collect::<Vec<_>>(),
                t0.reads.iter().map(|r| r.0 + off).collect::<Vec<_>>()
            );
            assert_eq!(
                t1.creates.iter().map(|r| r.0).collect::<Vec<_>>(),
                t0.creates.iter().map(|r| r.0 + off).collect::<Vec<_>>()
            );
        }
    }
}
