//! Dense block-slot addressing for the simulator hot path.
//!
//! Every block is `(RddId, partition)` with partition counts fixed at plan
//! time, so the set of blocks that can ever be cached is known up front: the
//! partitions of the cached RDDs. [`BlockSlots`] assigns each such block a
//! dense `u32` *slot* by prefix-summing partition counts over the cached
//! RDDs, letting all per-block runtime state (residency, pending
//! availability, recency, prefetch candidacy) live in flat vectors and
//! bitsets instead of `HashMap<BlockId, _>` — no hashing on the per-access
//! path.
//!
//! Slot order equals `BlockId` order (ascending rdd id, then partition),
//! because bases are assigned in increasing rdd order. Iterating slots
//! ascending therefore visits blocks in exactly the order the hash-backed
//! code obtained by sorting, which is what keeps the dense path
//! byte-identical to the reference implementation.

use crate::app::AppSpec;
use crate::ids::{BlockId, RddId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Sentinel base for RDDs with no slots (not cached, or zero partitions).
const NO_SLOT: u32 = u32::MAX;

/// Sentinel block occupying a freed slot in a [`SlotArena`]; never handed
/// out, because freed slots carry no live bits in any engine table.
const FREE_BLOCK: BlockId = BlockId {
    rdd: RddId(u32::MAX),
    partition: u32::MAX,
};

/// Prefix-sum slot arena over the cached RDDs of one application — or, in
/// streaming serve mode, a *windowed snapshot* of a [`SlotArena`]: the
/// `base`/`parts` tables then cover only the rdd ids of the currently live
/// applications, starting at `rdd_base`, so per-admission snapshots cost
/// O(active) rather than O(every rdd the stream has ever seen). All
/// single-application constructors produce `rdd_base == 0`, where behavior
/// is exactly the original whole-range mapping.
#[derive(Debug, Clone, Default)]
pub struct BlockSlots {
    /// First rdd id the `base`/`parts` window covers.
    rdd_base: u32,
    /// Per rdd id (window-relative): first slot of that RDD, or `NO_SLOT`.
    base: Vec<u32>,
    /// Per rdd id (window-relative): number of slotted partitions.
    parts: Vec<u32>,
    /// Reverse lookup: slot -> block. With `rdd_base == 0` slots ascend in
    /// `BlockId` order; arena snapshots may interleave recycled ranges, but
    /// stay `BlockId`-ordered *within* each application's contiguous range.
    blocks: Vec<BlockId>,
}

impl BlockSlots {
    /// Slots for every partition of every cached RDD in `spec`.
    pub fn new(spec: &AppSpec) -> Self {
        Self::from_counts(
            spec.rdds
                .iter()
                .map(|r| (r.id, if r.is_cached() { r.num_partitions } else { 0 })),
        )
    }

    /// Slots from explicit `(rdd, partition_count)` pairs, in ascending rdd
    /// order (benches and tests build synthetic universes this way). A count
    /// of 0 leaves the RDD uncovered; rdd ids may be sparse.
    pub fn from_counts(counts: impl IntoIterator<Item = (RddId, u32)>) -> Self {
        let mut base = Vec::new();
        let mut parts = Vec::new();
        let mut blocks = Vec::new();
        let mut next = 0u32;
        for (rdd, count) in counts {
            assert!(
                rdd.index() >= base.len(),
                "rdd ids must be ascending and unique"
            );
            base.resize(rdd.index() + 1, NO_SLOT);
            parts.resize(rdd.index() + 1, 0);
            if count == 0 {
                continue;
            }
            base[rdd.index()] = next;
            parts[rdd.index()] = count;
            next = next
                .checked_add(count)
                .expect("slot space exceeds u32::MAX blocks");
            blocks.extend((0..count).map(|p| BlockId::new(rdd, p)));
        }
        BlockSlots {
            rdd_base: 0,
            base,
            parts,
            blocks,
        }
    }

    /// First rdd id the window covers (0 except for arena snapshots).
    #[inline]
    pub fn rdd_base(&self) -> u32 {
        self.rdd_base
    }

    /// Window-relative index of `rdd`, or `None` when `rdd` is outside the
    /// window. With `rdd_base == 0` this is just a bounds-checked
    /// `rdd.index()`, which is what all single-application arenas use.
    #[inline]
    pub fn rdd_window(&self, rdd: RddId) -> Option<usize> {
        let i = rdd.index().checked_sub(self.rdd_base as usize)?;
        (i < self.base.len()).then_some(i)
    }

    /// Total number of slots (= addressable blocks).
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the arena covers no blocks at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of rdd ids the arena spans (covered or not).
    #[inline]
    pub fn num_rdds(&self) -> usize {
        self.base.len()
    }

    /// Whether `rdd` has any slots.
    #[inline]
    pub fn covers(&self, rdd: RddId) -> bool {
        self.rdd_window(rdd)
            .is_some_and(|i| self.base[i] != NO_SLOT)
    }

    /// The dense slot of `block`, or `None` when the block is outside the
    /// arena (non-cached RDD, partition past the count, unknown rdd).
    #[inline]
    pub fn slot(&self, block: BlockId) -> Option<u32> {
        let i = self.rdd_window(block.rdd)?;
        let b = self.base[i];
        if b == NO_SLOT || block.partition >= self.parts[i] {
            return None;
        }
        Some(b + block.partition)
    }

    /// Reverse lookup: the block occupying `slot`.
    ///
    /// # Panics
    /// Panics when `slot` is out of range.
    #[inline]
    pub fn block(&self, slot: u32) -> BlockId {
        self.blocks[slot as usize]
    }

    /// All covered blocks, ascending by slot (= ascending by `BlockId`).
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().copied()
    }
}

/// A free-listed, range-recyclable slot allocator for streaming serve mode.
///
/// Each admitted application gets one *contiguous* run of slots covering the
/// partitions of its cached RDDs; when the application retires, the run goes
/// back on a free list and is recycled by later admissions. Capacity (the
/// `blocks` table, and with it every dense engine table sized off
/// [`BlockSlots::len`]) therefore grows to *peak-active* demand, not to the
/// total length of the stream. The rdd window (`rdd_base..`) likewise tracks
/// only live applications, so [`snapshot`](Self::snapshot) — taken once per
/// admission and shared via `Arc` with the engine, stores, and the admitted
/// app's policy — costs O(active slots), keeping per-submission work flat.
///
/// Why contiguity matters: within one application's run, slots ascend in
/// `BlockId` order exactly as in a whole-stream arena, and the serve mux
/// restricts every ordered scan (victim selection, purge candidates,
/// prefetch candidates) to a single application's blocks. Absolute slot
/// values are never compared across applications, which is what keeps the
/// streaming path byte-identical to the build-everything-upfront reference.
#[derive(Debug, Default)]
pub struct SlotArena {
    /// Live rdd window, exactly as in a [`BlockSlots`] snapshot.
    rdd_base: u32,
    base: Vec<u32>,
    parts: Vec<u32>,
    /// Slot -> block for the whole capacity; freed slots hold `FREE_BLOCK`.
    blocks: Vec<BlockId>,
    /// Free runs `(slot_base, len)`, sorted by base, coalesced.
    free: Vec<(u32, u32)>,
    /// Live apps: first rdd id -> (rdd span, slot base, slot len).
    live: BTreeMap<u32, (u32, u32, u32)>,
    /// Currently allocated slots (capacity minus free).
    live_slots: u32,
}

impl SlotArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total slot capacity ever allocated (peak-active high-water mark).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.blocks.len()
    }

    /// Slots currently allocated to live applications.
    #[inline]
    pub fn live_slots(&self) -> usize {
        self.live_slots as usize
    }

    /// Number of live applications.
    #[inline]
    pub fn live_apps(&self) -> usize {
        self.live.len()
    }

    /// Admit one application: `counts` lists `(rdd, partition_count)` for
    /// *every* rdd of the app in ascending id order (0 for uncached rdds),
    /// exactly the shape [`BlockSlots::from_counts`] takes. Returns the
    /// app's `(slot_base, slot_len)` run. The rdd ids must not overlap any
    /// live application.
    pub fn admit(&mut self, counts: &[(RddId, u32)]) -> (u32, u32) {
        assert!(!counts.is_empty(), "an app spans at least one rdd");
        let first = counts[0].0 .0;
        let last = counts[counts.len() - 1].0 .0;
        debug_assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u32 = counts.iter().map(|&(_, c)| c).sum();

        // Extend (or re-seat) the rdd window to cover first..=last.
        if self.base.is_empty() {
            self.rdd_base = first;
        } else if first < self.rdd_base {
            // An arrival below the advanced window (possible with trace
            // arrivals that admit out of submission order): splice zeros in
            // front. Never triggered by monotone arrival streams.
            let grow = (self.rdd_base - first) as usize;
            self.base.splice(0..0, std::iter::repeat_n(NO_SLOT, grow));
            self.parts.splice(0..0, std::iter::repeat_n(0, grow));
            self.rdd_base = first;
        }
        let end = (last - self.rdd_base) as usize + 1;
        if end > self.base.len() {
            self.base.resize(end, NO_SLOT);
            self.parts.resize(end, 0);
        }

        // First-fit lowest free run; fall back to growing capacity.
        let slot_base = match (0..self.free.len()).find(|&i| self.free[i].1 >= total) {
            Some(i) if total > 0 => {
                let (fb, fl) = self.free[i];
                if fl == total {
                    self.free.remove(i);
                } else {
                    self.free[i] = (fb + total, fl - total);
                }
                fb
            }
            _ => {
                let b = self.blocks.len() as u32;
                self.blocks
                    .resize(self.blocks.len() + total as usize, FREE_BLOCK);
                b
            }
        };

        let mut next = slot_base;
        for &(rdd, count) in counts {
            let wi = (rdd.0 - self.rdd_base) as usize;
            debug_assert_eq!(self.base[wi], NO_SLOT, "rdd range overlaps a live app");
            if count == 0 {
                continue;
            }
            self.base[wi] = next;
            self.parts[wi] = count;
            for p in 0..count {
                self.blocks[(next + p) as usize] = BlockId::new(rdd, p);
            }
            next += count;
        }
        self.live
            .insert(first, (last - first + 1, slot_base, total));
        self.live_slots += total;
        (slot_base, total)
    }

    /// Retire the application whose rdd range starts at `first_rdd`,
    /// returning its slot run to the free list and advancing the rdd window
    /// past fully-retired prefixes. The caller must already have purged the
    /// app's blocks from every dense table keyed by this arena.
    pub fn retire(&mut self, first_rdd: RddId) {
        let (nrdds, slot_base, slot_len) = self
            .live
            .remove(&first_rdd.0)
            .expect("retire of an app that is not live");
        let w0 = (first_rdd.0 - self.rdd_base) as usize;
        for wi in w0..w0 + nrdds as usize {
            self.base[wi] = NO_SLOT;
            self.parts[wi] = 0;
        }
        for s in slot_base..slot_base + slot_len {
            self.blocks[s as usize] = FREE_BLOCK;
        }
        self.live_slots -= slot_len;

        if slot_len > 0 {
            // Insert into the sorted free list, coalescing with neighbors.
            let i = self.free.partition_point(|&(b, _)| b < slot_base);
            let merge_prev =
                i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == slot_base;
            let merge_next =
                i < self.free.len() && slot_base + slot_len == self.free[i].0;
            match (merge_prev, merge_next) {
                (true, true) => {
                    self.free[i - 1].1 += slot_len + self.free[i].1;
                    self.free.remove(i);
                }
                (true, false) => self.free[i - 1].1 += slot_len,
                (false, true) => {
                    self.free[i].0 = slot_base;
                    self.free[i].1 += slot_len;
                }
                (false, false) => self.free.insert(i, (slot_base, slot_len)),
            }
        }

        // Advance the window to the lowest live rdd (drop retired prefix).
        match self.live.keys().next() {
            Some(&lo) if lo > self.rdd_base => {
                let drop = (lo - self.rdd_base) as usize;
                self.base.drain(..drop);
                self.parts.drain(..drop);
                self.rdd_base = lo;
            }
            None => {
                self.base.clear();
                self.parts.clear();
            }
            _ => {}
        }
    }

    /// A windowed [`BlockSlots`] snapshot of the current live state, shared
    /// with the engine, stores, and the newly admitted app's policy. Costs
    /// O(window + capacity) — both bounded by peak-active demand.
    pub fn snapshot(&self) -> BlockSlots {
        BlockSlots {
            rdd_base: self.rdd_base,
            base: self.base.clone(),
            parts: self.parts.clone(),
            blocks: self.blocks.clone(),
        }
    }
}

/// A map keyed by `BlockId`, backed either by a `HashMap` (the reference
/// implementation, kept for the hash-vs-dense differential tests) or by a
/// dense per-slot vector over a [`BlockSlots`] arena.
///
/// Behavior is identical across backings; only iteration order differs
/// (dense iterates ascending by slot, hash arbitrarily), so callers that
/// need a canonical order must sort — exactly as they already did for the
/// `HashMap`.
#[derive(Debug, Clone)]
pub struct SlotMap<V> {
    repr: SlotMapRepr<V>,
}

#[derive(Debug, Clone)]
enum SlotMapRepr<V> {
    Hash(HashMap<BlockId, V>),
    Dense {
        slots: Arc<BlockSlots>,
        vals: Vec<Option<V>>,
        len: usize,
    },
}

impl<V> SlotMap<V> {
    /// Hash-backed map (the reference path).
    pub fn hashed() -> Self {
        SlotMap {
            repr: SlotMapRepr::Hash(HashMap::new()),
        }
    }

    /// Dense map over `slots`.
    pub fn dense(slots: Arc<BlockSlots>) -> Self {
        let mut vals = Vec::new();
        vals.resize_with(slots.len(), || None);
        SlotMap {
            repr: SlotMapRepr::Dense {
                slots,
                vals,
                len: 0,
            },
        }
    }

    fn dense_idx(slots: &BlockSlots, block: BlockId) -> usize {
        slots
            .slot(block)
            .unwrap_or_else(|| panic!("block {block} outside the slot arena")) as usize
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            SlotMapRepr::Hash(m) => m.len(),
            SlotMapRepr::Dense { len, .. } => *len,
        }
    }

    /// Whether the map has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `block` has an entry.
    #[inline]
    pub fn contains(&self, block: BlockId) -> bool {
        self.get(block).is_some()
    }

    /// The value for `block`, if any.
    #[inline]
    pub fn get(&self, block: BlockId) -> Option<&V> {
        match &self.repr {
            SlotMapRepr::Hash(m) => m.get(&block),
            SlotMapRepr::Dense { slots, vals, .. } => {
                vals[Self::dense_idx(slots, block)].as_ref()
            }
        }
    }

    /// Mutable access to the value for `block`, if any.
    #[inline]
    pub fn get_mut(&mut self, block: BlockId) -> Option<&mut V> {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.get_mut(&block),
            SlotMapRepr::Dense { slots, vals, .. } => {
                vals[Self::dense_idx(slots, block)].as_mut()
            }
        }
    }

    /// Insert or overwrite, returning the previous value.
    pub fn insert(&mut self, block: BlockId, value: V) -> Option<V> {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.insert(block, value),
            SlotMapRepr::Dense { slots, vals, len } => {
                let old = vals[Self::dense_idx(slots, block)].replace(value);
                if old.is_none() {
                    *len += 1;
                }
                old
            }
        }
    }

    /// Remove the entry for `block`, returning its value.
    pub fn remove(&mut self, block: BlockId) -> Option<V> {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.remove(&block),
            SlotMapRepr::Dense { slots, vals, len } => {
                let old = vals[Self::dense_idx(slots, block)].take();
                if old.is_some() {
                    *len -= 1;
                }
                old
            }
        }
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.clear(),
            SlotMapRepr::Dense { vals, len, .. } => {
                vals.iter_mut().for_each(|v| *v = None);
                *len = 0;
            }
        }
    }

    /// Swap in a newer arena snapshot whose capacity is a superset of the
    /// current one (streaming admission): live slot indices never move, so
    /// existing entries stay valid; the value table grows to the new
    /// capacity. No-op on the hash backing.
    pub fn adopt(&mut self, new: Arc<BlockSlots>) {
        if let SlotMapRepr::Dense { slots, vals, .. } = &mut self.repr {
            debug_assert!(new.len() >= vals.len(), "arena capacity never shrinks");
            vals.resize_with(new.len(), || None);
            *slots = new;
        }
    }

    /// Iterate entries (dense: ascending by slot; hash: arbitrary).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &V)> + '_ {
        let (hash, dense) = match &self.repr {
            SlotMapRepr::Hash(m) => (Some(m.iter().map(|(&b, v)| (b, v))), None),
            SlotMapRepr::Dense { slots, vals, .. } => (
                None,
                Some(
                    vals.iter()
                        .enumerate()
                        .filter_map(move |(i, v)| v.as_ref().map(|v| (slots.block(i as u32), v))),
                ),
            ),
        };
        hash.into_iter().flatten().chain(dense.into_iter().flatten())
    }
}

/// A plain dense bitset over the slots of a [`BlockSlots`] arena. Used for
/// per-run block flags (materialized, prefetched-unused, prefetchable) on
/// the dense path; the hash-backed reference path keeps its `HashSet`s.
#[derive(Debug, Clone, Default)]
pub struct SlotSet {
    words: Vec<u64>,
    len: usize,
}

impl SlotSet {
    /// An empty set over `slots` slots.
    pub fn new(slots: usize) -> Self {
        SlotSet {
            words: vec![0; slots.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of set slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `slot` is set.
    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Set `slot`; returns whether it was newly set.
    #[inline]
    pub fn insert(&mut self, slot: u32) -> bool {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += newly as usize;
        newly
    }

    /// Clear `slot`; returns whether it was set.
    #[inline]
    pub fn remove(&mut self, slot: u32) -> bool {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.len -= was as usize;
        was
    }

    /// Reset to an empty set over `slots` slots, reusing the word buffer.
    /// Equivalent to `*self = SlotSet::new(slots)` without the allocation.
    pub fn reset(&mut self, slots: usize) {
        self.words.clear();
        self.words.resize(slots.div_ceil(64), 0);
        self.len = 0;
    }

    /// Grow capacity to at least `slots` slots, keeping every set bit
    /// (streaming admission: tables follow the arena's capacity).
    pub fn grow(&mut self, slots: usize) {
        let need = slots.div_ceil(64);
        if need > self.words.len() {
            self.words.resize(need, 0);
        }
    }

    /// Clear every bit in `start..start + len` (app retirement: scrub the
    /// freed slot run before it gets recycled).
    pub fn clear_range(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let (lo, hi) = (start as usize, (start + len) as usize);
        for w in lo / 64..=(hi - 1) / 64 {
            let from = (lo.max(w * 64)) % 64;
            let to = hi.min((w + 1) * 64) - w * 64;
            let mask = if to == 64 {
                !0u64 << from
            } else {
                (!0u64 << from) & !(!0u64 << to)
            };
            let cleared = (self.words[w] & mask).count_ones() as usize;
            self.words[w] &= !mask;
            self.len -= cleared;
        }
    }

    /// Set slots in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(i as u32 * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Action, AppBuilder};
    use crate::rdd::StorageLevel;

    fn arena() -> BlockSlots {
        // rdd0: input (not cached, 4 parts), rdd1: cached 4 parts,
        // rdd2: not cached, rdd3: cached 3 parts (shuffle output).
        let mut b = AppBuilder::new("slots");
        let input = b.input("in", 4, 1024, 100);
        let data = b.narrow("data", input, 1024, 100);
        b.cache(data);
        let other = b.narrow("other", input, 1024, 100);
        let agg = b.shuffle("agg", &[other], 3, 512, 100);
        b.persist(agg, StorageLevel::MemoryAndDisk);
        b.action("j0", agg);
        BlockSlots::new(&b.build())
    }

    #[test]
    fn prefix_sums_cover_cached_rdds_only() {
        let s = arena();
        assert_eq!(s.len(), 7); // 4 (rdd1) + 3 (rdd3)
        assert!(!s.covers(RddId(0)));
        assert!(s.covers(RddId(1)));
        assert!(!s.covers(RddId(2)));
        assert!(s.covers(RddId(3)));
        assert_eq!(s.slot(BlockId::new(RddId(1), 0)), Some(0));
        assert_eq!(s.slot(BlockId::new(RddId(1), 3)), Some(3));
        assert_eq!(s.slot(BlockId::new(RddId(3), 0)), Some(4));
        assert_eq!(s.slot(BlockId::new(RddId(3), 2)), Some(6));
    }

    #[test]
    fn non_cached_and_out_of_range_blocks_have_no_slot() {
        let s = arena();
        assert_eq!(s.slot(BlockId::new(RddId(0), 0)), None); // input rdd
        assert_eq!(s.slot(BlockId::new(RddId(2), 1)), None); // uncached
        assert_eq!(s.slot(BlockId::new(RddId(1), 4)), None); // partition OOR
        assert_eq!(s.slot(BlockId::new(RddId(99), 0)), None); // unknown rdd
    }

    #[test]
    fn slot_block_round_trip_in_blockid_order() {
        let s = arena();
        let mut prev: Option<BlockId> = None;
        for slot in 0..s.len() as u32 {
            let b = s.block(slot);
            assert_eq!(s.slot(b), Some(slot));
            if let Some(p) = prev {
                assert!(p < b, "slot order must equal BlockId order");
            }
            prev = Some(b);
        }
    }

    #[test]
    fn zero_partition_rdd_is_uncovered() {
        // `AppSpec::validate` rejects zero-partition RDDs, but the arena must
        // tolerate them (raw specs appear in property tests); build one
        // directly from counts and from a raw spec.
        let s = BlockSlots::from_counts([(RddId(0), 0), (RddId(1), 2)]);
        assert!(!s.covers(RddId(0)));
        assert_eq!(s.slot(BlockId::new(RddId(0), 0)), None);
        assert_eq!(s.slot(BlockId::new(RddId(1), 1)), Some(1));
        assert_eq!(s.len(), 2);

        let mut b = AppBuilder::new("raw");
        let input = b.input("in", 2, 64, 1);
        let data = b.narrow("data", input, 64, 1);
        b.cache(data);
        b.action("j", data);
        let mut spec = b.build();
        spec.rdds[1].num_partitions = 0; // invalid per validate(), tolerated here
        spec.actions.push(Action {
            target: data,
            name: "extra".into(),
        });
        let s = BlockSlots::new(&spec);
        assert!(s.is_empty());
        assert_eq!(s.slot(BlockId::new(data, 0)), None);
    }

    #[test]
    fn sparse_counts_skip_gaps() {
        let s = BlockSlots::from_counts([(RddId(2), 1), (RddId(5), 2)]);
        assert_eq!(s.num_rdds(), 6);
        assert_eq!(s.slot(BlockId::new(RddId(2), 0)), Some(0));
        assert_eq!(s.slot(BlockId::new(RddId(5), 1)), Some(2));
        assert_eq!(s.slot(BlockId::new(RddId(3), 0)), None);
        let all: Vec<BlockId> = s.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], BlockId::new(RddId(2), 0));
    }

    #[test]
    fn slotmap_backings_agree() {
        let slots = Arc::new(arena());
        let mut hash: SlotMap<u64> = SlotMap::hashed();
        let mut dense: SlotMap<u64> = SlotMap::dense(Arc::clone(&slots));
        let blocks: Vec<BlockId> = slots.iter().collect();
        for (i, &b) in blocks.iter().enumerate() {
            assert_eq!(hash.insert(b, i as u64), dense.insert(b, i as u64));
        }
        // Overwrite returns the old value on both.
        assert_eq!(hash.insert(blocks[0], 99), Some(0));
        assert_eq!(dense.insert(blocks[0], 99), Some(0));
        for &b in &blocks {
            assert_eq!(hash.get(b), dense.get(b));
            assert_eq!(hash.contains(b), dense.contains(b));
        }
        assert_eq!(hash.len(), dense.len());
        // Dense iteration is sorted; sort the hash side to compare.
        let mut h: Vec<(BlockId, u64)> = hash.iter().map(|(b, &v)| (b, v)).collect();
        h.sort_unstable();
        let d: Vec<(BlockId, u64)> = dense.iter().map(|(b, &v)| (b, v)).collect();
        assert_eq!(h, d);
        assert_eq!(hash.remove(blocks[2]), dense.remove(blocks[2]));
        assert_eq!(hash.remove(blocks[2]), None);
        assert_eq!(dense.remove(blocks[2]), None);
        assert_eq!(hash.len(), dense.len());
        hash.clear();
        dense.clear();
        assert!(hash.is_empty() && dense.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the slot arena")]
    fn dense_slotmap_rejects_foreign_blocks() {
        let mut m: SlotMap<u32> = SlotMap::dense(Arc::new(arena()));
        m.insert(BlockId::new(RddId(0), 0), 1);
    }

    #[test]
    fn slotset_tracks_membership_and_order() {
        let mut s = SlotSet::new(130);
        assert!(s.insert(129));
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 129]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn slotset_grow_and_clear_range() {
        let mut s = SlotSet::new(10);
        s.insert(3);
        s.insert(9);
        s.grow(300);
        assert!(s.contains(3) && s.contains(9));
        assert!(s.insert(299));
        s.insert(63);
        s.insert(64);
        s.insert(130);
        // Clear a range spanning a word boundary.
        s.clear_range(9, 56); // bits 9..65
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![3, 130, 299]);
        assert_eq!(s.len(), 3);
        s.clear_range(0, 0);
        assert_eq!(s.len(), 3);
        s.clear_range(128, 64);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![3, 299]);
    }

    #[test]
    fn arena_recycles_slot_ranges() {
        let mut a = SlotArena::new();
        // App 0: rdds 0..3, cached counts 0/4/2 -> 6 slots at base 0.
        assert_eq!(
            a.admit(&[(RddId(0), 0), (RddId(1), 4), (RddId(2), 2)]),
            (0, 6)
        );
        // App 1: rdds 3..5, counts 3/0 -> 3 slots at base 6.
        assert_eq!(a.admit(&[(RddId(3), 3), (RddId(4), 0)]), (6, 3));
        assert_eq!(a.capacity(), 9);
        assert_eq!((a.live_apps(), a.live_slots()), (2, 9));

        let snap = a.snapshot();
        assert_eq!(snap.rdd_base(), 0);
        assert_eq!(snap.slot(BlockId::new(RddId(1), 0)), Some(0));
        assert_eq!(snap.slot(BlockId::new(RddId(3), 2)), Some(8));
        assert_eq!(snap.block(8), BlockId::new(RddId(3), 2));

        // Retire app 0: its 6 slots go on the free list, window advances.
        a.retire(RddId(0));
        assert_eq!((a.live_apps(), a.live_slots(), a.capacity()), (1, 3, 9));
        let snap = a.snapshot();
        assert_eq!(snap.rdd_base(), 3);
        assert_eq!(snap.slot(BlockId::new(RddId(1), 0)), None); // below window
        assert_eq!(snap.slot(BlockId::new(RddId(3), 1)), Some(7));

        // App 2 (5 slots) reuses the freed run; capacity does not grow.
        assert_eq!(a.admit(&[(RddId(5), 5)]), (0, 5));
        assert_eq!(a.capacity(), 9);
        let snap = a.snapshot();
        assert_eq!(snap.rdd_base(), 3);
        assert_eq!(snap.slot(BlockId::new(RddId(5), 4)), Some(4));
        assert_eq!(snap.block(4), BlockId::new(RddId(5), 4));
        // Slots ascend in BlockId order within each app's run.
        for p in 1..5 {
            assert!(snap.block(p as u32 - 1) < snap.block(p as u32));
        }

        // App 3 needs 1 slot: first-fit takes the remaining free slot 5
        // before growing.
        assert_eq!(a.admit(&[(RddId(6), 1)]), (5, 1));
        assert_eq!(a.capacity(), 9);
        // App 4 (3 slots) must grow capacity — no free run is big enough.
        assert_eq!(a.admit(&[(RddId(7), 3)]), (9, 3));
        assert_eq!(a.capacity(), 12);

        // Retiring everything coalesces the free list back to one run.
        for r in [5u32, 6, 7, 3] {
            a.retire(RddId(r));
        }
        assert_eq!((a.live_apps(), a.live_slots()), (0, 0));
        assert_eq!(a.free, vec![(0, 12)]);
        assert_eq!(a.capacity(), 12);

        // A fresh admission re-seats the window from scratch.
        assert_eq!(a.admit(&[(RddId(20), 1)]), (0, 1));
        assert_eq!(a.snapshot().rdd_base(), 20);
        assert_eq!(a.snapshot().slot(BlockId::new(RddId(20), 0)), Some(0));
    }

    #[test]
    fn arena_admission_below_the_window_reseats_it() {
        let mut a = SlotArena::new();
        a.admit(&[(RddId(4), 2)]);
        a.admit(&[(RddId(9), 1)]);
        a.retire(RddId(4));
        assert_eq!(a.snapshot().rdd_base(), 9);
        // Trace arrivals can admit below the advanced window. The free run
        // (2 slots) is too small for 3, so capacity grows.
        assert_eq!(a.admit(&[(RddId(2), 3), (RddId(3), 0)]), (3, 3));
        let snap = a.snapshot();
        assert_eq!(snap.rdd_base(), 2);
        assert_eq!(snap.slot(BlockId::new(RddId(2), 2)), Some(5));
        assert_eq!(snap.slot(BlockId::new(RddId(9), 0)), Some(2));
        assert!(!snap.covers(RddId(4)));
    }

    #[test]
    fn arena_zero_slot_app_is_tracked_without_slots() {
        let mut a = SlotArena::new();
        assert_eq!(a.admit(&[(RddId(0), 0), (RddId(1), 0)]), (0, 0));
        assert_eq!((a.live_apps(), a.live_slots(), a.capacity()), (1, 0, 0));
        a.admit(&[(RddId(2), 2)]);
        a.retire(RddId(0));
        assert_eq!(a.snapshot().rdd_base(), 2);
        assert_eq!(a.live_apps(), 1);
    }

    #[test]
    fn slotmap_adopt_preserves_entries_across_growth() {
        let mut a = SlotArena::new();
        a.admit(&[(RddId(0), 2)]);
        let mut m: SlotMap<u64> = SlotMap::dense(Arc::new(a.snapshot()));
        m.insert(BlockId::new(RddId(0), 1), 7);
        a.admit(&[(RddId(1), 3)]);
        m.adopt(Arc::new(a.snapshot()));
        assert_eq!(m.get(BlockId::new(RddId(0), 1)), Some(&7));
        m.insert(BlockId::new(RddId(1), 2), 9);
        assert_eq!(m.len(), 2);
        let got: Vec<(BlockId, u64)> = m.iter().map(|(b, &v)| (b, v)).collect();
        assert_eq!(
            got,
            vec![
                (BlockId::new(RddId(0), 1), 7),
                (BlockId::new(RddId(1), 2), 9)
            ]
        );
    }

    #[test]
    fn slotset_reset_matches_fresh() {
        let mut s = SlotSet::new(130);
        s.insert(0);
        s.insert(129);
        s.reset(70);
        assert!(s.is_empty());
        assert_eq!(s.ones().count(), 0);
        assert!(!s.contains(0));
        s.insert(69);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![69]);
        // Growing past the old capacity also works.
        s.reset(300);
        assert!(s.insert(299));
        assert_eq!(s.len(), 1);
    }
}
