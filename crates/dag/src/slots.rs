//! Dense block-slot addressing for the simulator hot path.
//!
//! Every block is `(RddId, partition)` with partition counts fixed at plan
//! time, so the set of blocks that can ever be cached is known up front: the
//! partitions of the cached RDDs. [`BlockSlots`] assigns each such block a
//! dense `u32` *slot* by prefix-summing partition counts over the cached
//! RDDs, letting all per-block runtime state (residency, pending
//! availability, recency, prefetch candidacy) live in flat vectors and
//! bitsets instead of `HashMap<BlockId, _>` — no hashing on the per-access
//! path.
//!
//! Slot order equals `BlockId` order (ascending rdd id, then partition),
//! because bases are assigned in increasing rdd order. Iterating slots
//! ascending therefore visits blocks in exactly the order the hash-backed
//! code obtained by sorting, which is what keeps the dense path
//! byte-identical to the reference implementation.

use crate::app::AppSpec;
use crate::ids::{BlockId, RddId};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel base for RDDs with no slots (not cached, or zero partitions).
const NO_SLOT: u32 = u32::MAX;

/// Prefix-sum slot arena over the cached RDDs of one application.
#[derive(Debug, Clone, Default)]
pub struct BlockSlots {
    /// Per rdd id: first slot of that RDD, or `NO_SLOT`.
    base: Vec<u32>,
    /// Per rdd id: number of slotted partitions (0 when not covered).
    parts: Vec<u32>,
    /// Reverse lookup: slot -> block, ascending by `BlockId`.
    blocks: Vec<BlockId>,
}

impl BlockSlots {
    /// Slots for every partition of every cached RDD in `spec`.
    pub fn new(spec: &AppSpec) -> Self {
        Self::from_counts(
            spec.rdds
                .iter()
                .map(|r| (r.id, if r.is_cached() { r.num_partitions } else { 0 })),
        )
    }

    /// Slots from explicit `(rdd, partition_count)` pairs, in ascending rdd
    /// order (benches and tests build synthetic universes this way). A count
    /// of 0 leaves the RDD uncovered; rdd ids may be sparse.
    pub fn from_counts(counts: impl IntoIterator<Item = (RddId, u32)>) -> Self {
        let mut base = Vec::new();
        let mut parts = Vec::new();
        let mut blocks = Vec::new();
        let mut next = 0u32;
        for (rdd, count) in counts {
            assert!(
                rdd.index() >= base.len(),
                "rdd ids must be ascending and unique"
            );
            base.resize(rdd.index() + 1, NO_SLOT);
            parts.resize(rdd.index() + 1, 0);
            if count == 0 {
                continue;
            }
            base[rdd.index()] = next;
            parts[rdd.index()] = count;
            next = next
                .checked_add(count)
                .expect("slot space exceeds u32::MAX blocks");
            blocks.extend((0..count).map(|p| BlockId::new(rdd, p)));
        }
        BlockSlots {
            base,
            parts,
            blocks,
        }
    }

    /// Total number of slots (= addressable blocks).
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the arena covers no blocks at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of rdd ids the arena spans (covered or not).
    #[inline]
    pub fn num_rdds(&self) -> usize {
        self.base.len()
    }

    /// Whether `rdd` has any slots.
    #[inline]
    pub fn covers(&self, rdd: RddId) -> bool {
        self.base.get(rdd.index()).is_some_and(|&b| b != NO_SLOT)
    }

    /// The dense slot of `block`, or `None` when the block is outside the
    /// arena (non-cached RDD, partition past the count, unknown rdd).
    #[inline]
    pub fn slot(&self, block: BlockId) -> Option<u32> {
        let i = block.rdd.index();
        let &b = self.base.get(i)?;
        if b == NO_SLOT || block.partition >= self.parts[i] {
            return None;
        }
        Some(b + block.partition)
    }

    /// Reverse lookup: the block occupying `slot`.
    ///
    /// # Panics
    /// Panics when `slot` is out of range.
    #[inline]
    pub fn block(&self, slot: u32) -> BlockId {
        self.blocks[slot as usize]
    }

    /// All covered blocks, ascending by slot (= ascending by `BlockId`).
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().copied()
    }
}

/// A map keyed by `BlockId`, backed either by a `HashMap` (the reference
/// implementation, kept for the hash-vs-dense differential tests) or by a
/// dense per-slot vector over a [`BlockSlots`] arena.
///
/// Behavior is identical across backings; only iteration order differs
/// (dense iterates ascending by slot, hash arbitrarily), so callers that
/// need a canonical order must sort — exactly as they already did for the
/// `HashMap`.
#[derive(Debug, Clone)]
pub struct SlotMap<V> {
    repr: SlotMapRepr<V>,
}

#[derive(Debug, Clone)]
enum SlotMapRepr<V> {
    Hash(HashMap<BlockId, V>),
    Dense {
        slots: Arc<BlockSlots>,
        vals: Vec<Option<V>>,
        len: usize,
    },
}

impl<V> SlotMap<V> {
    /// Hash-backed map (the reference path).
    pub fn hashed() -> Self {
        SlotMap {
            repr: SlotMapRepr::Hash(HashMap::new()),
        }
    }

    /// Dense map over `slots`.
    pub fn dense(slots: Arc<BlockSlots>) -> Self {
        let mut vals = Vec::new();
        vals.resize_with(slots.len(), || None);
        SlotMap {
            repr: SlotMapRepr::Dense {
                slots,
                vals,
                len: 0,
            },
        }
    }

    fn dense_idx(slots: &BlockSlots, block: BlockId) -> usize {
        slots
            .slot(block)
            .unwrap_or_else(|| panic!("block {block} outside the slot arena")) as usize
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            SlotMapRepr::Hash(m) => m.len(),
            SlotMapRepr::Dense { len, .. } => *len,
        }
    }

    /// Whether the map has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `block` has an entry.
    #[inline]
    pub fn contains(&self, block: BlockId) -> bool {
        self.get(block).is_some()
    }

    /// The value for `block`, if any.
    #[inline]
    pub fn get(&self, block: BlockId) -> Option<&V> {
        match &self.repr {
            SlotMapRepr::Hash(m) => m.get(&block),
            SlotMapRepr::Dense { slots, vals, .. } => {
                vals[Self::dense_idx(slots, block)].as_ref()
            }
        }
    }

    /// Mutable access to the value for `block`, if any.
    #[inline]
    pub fn get_mut(&mut self, block: BlockId) -> Option<&mut V> {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.get_mut(&block),
            SlotMapRepr::Dense { slots, vals, .. } => {
                vals[Self::dense_idx(slots, block)].as_mut()
            }
        }
    }

    /// Insert or overwrite, returning the previous value.
    pub fn insert(&mut self, block: BlockId, value: V) -> Option<V> {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.insert(block, value),
            SlotMapRepr::Dense { slots, vals, len } => {
                let old = vals[Self::dense_idx(slots, block)].replace(value);
                if old.is_none() {
                    *len += 1;
                }
                old
            }
        }
    }

    /// Remove the entry for `block`, returning its value.
    pub fn remove(&mut self, block: BlockId) -> Option<V> {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.remove(&block),
            SlotMapRepr::Dense { slots, vals, len } => {
                let old = vals[Self::dense_idx(slots, block)].take();
                if old.is_some() {
                    *len -= 1;
                }
                old
            }
        }
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        match &mut self.repr {
            SlotMapRepr::Hash(m) => m.clear(),
            SlotMapRepr::Dense { vals, len, .. } => {
                vals.iter_mut().for_each(|v| *v = None);
                *len = 0;
            }
        }
    }

    /// Iterate entries (dense: ascending by slot; hash: arbitrary).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &V)> + '_ {
        let (hash, dense) = match &self.repr {
            SlotMapRepr::Hash(m) => (Some(m.iter().map(|(&b, v)| (b, v))), None),
            SlotMapRepr::Dense { slots, vals, .. } => (
                None,
                Some(
                    vals.iter()
                        .enumerate()
                        .filter_map(move |(i, v)| v.as_ref().map(|v| (slots.block(i as u32), v))),
                ),
            ),
        };
        hash.into_iter().flatten().chain(dense.into_iter().flatten())
    }
}

/// A plain dense bitset over the slots of a [`BlockSlots`] arena. Used for
/// per-run block flags (materialized, prefetched-unused, prefetchable) on
/// the dense path; the hash-backed reference path keeps its `HashSet`s.
#[derive(Debug, Clone, Default)]
pub struct SlotSet {
    words: Vec<u64>,
    len: usize,
}

impl SlotSet {
    /// An empty set over `slots` slots.
    pub fn new(slots: usize) -> Self {
        SlotSet {
            words: vec![0; slots.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of set slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `slot` is set.
    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Set `slot`; returns whether it was newly set.
    #[inline]
    pub fn insert(&mut self, slot: u32) -> bool {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += newly as usize;
        newly
    }

    /// Clear `slot`; returns whether it was set.
    #[inline]
    pub fn remove(&mut self, slot: u32) -> bool {
        let (w, b) = (slot as usize / 64, slot as usize % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.len -= was as usize;
        was
    }

    /// Reset to an empty set over `slots` slots, reusing the word buffer.
    /// Equivalent to `*self = SlotSet::new(slots)` without the allocation.
    pub fn reset(&mut self, slots: usize) {
        self.words.clear();
        self.words.resize(slots.div_ceil(64), 0);
        self.len = 0;
    }

    /// Set slots in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(i as u32 * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Action, AppBuilder};
    use crate::rdd::StorageLevel;

    fn arena() -> BlockSlots {
        // rdd0: input (not cached, 4 parts), rdd1: cached 4 parts,
        // rdd2: not cached, rdd3: cached 3 parts (shuffle output).
        let mut b = AppBuilder::new("slots");
        let input = b.input("in", 4, 1024, 100);
        let data = b.narrow("data", input, 1024, 100);
        b.cache(data);
        let other = b.narrow("other", input, 1024, 100);
        let agg = b.shuffle("agg", &[other], 3, 512, 100);
        b.persist(agg, StorageLevel::MemoryAndDisk);
        b.action("j0", agg);
        BlockSlots::new(&b.build())
    }

    #[test]
    fn prefix_sums_cover_cached_rdds_only() {
        let s = arena();
        assert_eq!(s.len(), 7); // 4 (rdd1) + 3 (rdd3)
        assert!(!s.covers(RddId(0)));
        assert!(s.covers(RddId(1)));
        assert!(!s.covers(RddId(2)));
        assert!(s.covers(RddId(3)));
        assert_eq!(s.slot(BlockId::new(RddId(1), 0)), Some(0));
        assert_eq!(s.slot(BlockId::new(RddId(1), 3)), Some(3));
        assert_eq!(s.slot(BlockId::new(RddId(3), 0)), Some(4));
        assert_eq!(s.slot(BlockId::new(RddId(3), 2)), Some(6));
    }

    #[test]
    fn non_cached_and_out_of_range_blocks_have_no_slot() {
        let s = arena();
        assert_eq!(s.slot(BlockId::new(RddId(0), 0)), None); // input rdd
        assert_eq!(s.slot(BlockId::new(RddId(2), 1)), None); // uncached
        assert_eq!(s.slot(BlockId::new(RddId(1), 4)), None); // partition OOR
        assert_eq!(s.slot(BlockId::new(RddId(99), 0)), None); // unknown rdd
    }

    #[test]
    fn slot_block_round_trip_in_blockid_order() {
        let s = arena();
        let mut prev: Option<BlockId> = None;
        for slot in 0..s.len() as u32 {
            let b = s.block(slot);
            assert_eq!(s.slot(b), Some(slot));
            if let Some(p) = prev {
                assert!(p < b, "slot order must equal BlockId order");
            }
            prev = Some(b);
        }
    }

    #[test]
    fn zero_partition_rdd_is_uncovered() {
        // `AppSpec::validate` rejects zero-partition RDDs, but the arena must
        // tolerate them (raw specs appear in property tests); build one
        // directly from counts and from a raw spec.
        let s = BlockSlots::from_counts([(RddId(0), 0), (RddId(1), 2)]);
        assert!(!s.covers(RddId(0)));
        assert_eq!(s.slot(BlockId::new(RddId(0), 0)), None);
        assert_eq!(s.slot(BlockId::new(RddId(1), 1)), Some(1));
        assert_eq!(s.len(), 2);

        let mut b = AppBuilder::new("raw");
        let input = b.input("in", 2, 64, 1);
        let data = b.narrow("data", input, 64, 1);
        b.cache(data);
        b.action("j", data);
        let mut spec = b.build();
        spec.rdds[1].num_partitions = 0; // invalid per validate(), tolerated here
        spec.actions.push(Action {
            target: data,
            name: "extra".into(),
        });
        let s = BlockSlots::new(&spec);
        assert!(s.is_empty());
        assert_eq!(s.slot(BlockId::new(data, 0)), None);
    }

    #[test]
    fn sparse_counts_skip_gaps() {
        let s = BlockSlots::from_counts([(RddId(2), 1), (RddId(5), 2)]);
        assert_eq!(s.num_rdds(), 6);
        assert_eq!(s.slot(BlockId::new(RddId(2), 0)), Some(0));
        assert_eq!(s.slot(BlockId::new(RddId(5), 1)), Some(2));
        assert_eq!(s.slot(BlockId::new(RddId(3), 0)), None);
        let all: Vec<BlockId> = s.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], BlockId::new(RddId(2), 0));
    }

    #[test]
    fn slotmap_backings_agree() {
        let slots = Arc::new(arena());
        let mut hash: SlotMap<u64> = SlotMap::hashed();
        let mut dense: SlotMap<u64> = SlotMap::dense(Arc::clone(&slots));
        let blocks: Vec<BlockId> = slots.iter().collect();
        for (i, &b) in blocks.iter().enumerate() {
            assert_eq!(hash.insert(b, i as u64), dense.insert(b, i as u64));
        }
        // Overwrite returns the old value on both.
        assert_eq!(hash.insert(blocks[0], 99), Some(0));
        assert_eq!(dense.insert(blocks[0], 99), Some(0));
        for &b in &blocks {
            assert_eq!(hash.get(b), dense.get(b));
            assert_eq!(hash.contains(b), dense.contains(b));
        }
        assert_eq!(hash.len(), dense.len());
        // Dense iteration is sorted; sort the hash side to compare.
        let mut h: Vec<(BlockId, u64)> = hash.iter().map(|(b, &v)| (b, v)).collect();
        h.sort_unstable();
        let d: Vec<(BlockId, u64)> = dense.iter().map(|(b, &v)| (b, v)).collect();
        assert_eq!(h, d);
        assert_eq!(hash.remove(blocks[2]), dense.remove(blocks[2]));
        assert_eq!(hash.remove(blocks[2]), None);
        assert_eq!(dense.remove(blocks[2]), None);
        assert_eq!(hash.len(), dense.len());
        hash.clear();
        dense.clear();
        assert!(hash.is_empty() && dense.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the slot arena")]
    fn dense_slotmap_rejects_foreign_blocks() {
        let mut m: SlotMap<u32> = SlotMap::dense(Arc::new(arena()));
        m.insert(BlockId::new(RddId(0), 0), 1);
    }

    #[test]
    fn slotset_tracks_membership_and_order() {
        let mut s = SlotSet::new(130);
        assert!(s.insert(129));
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 129]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn slotset_reset_matches_fresh() {
        let mut s = SlotSet::new(130);
        s.insert(0);
        s.insert(129);
        s.reset(70);
        assert!(s.is_empty());
        assert_eq!(s.ones().count(), 0);
        assert!(!s.contains(0));
        s.insert(69);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![69]);
        // Growing past the old capacity also works.
        s.reset(300);
        assert!(s.insert(299));
        assert_eq!(s.len(), 1);
    }
}
