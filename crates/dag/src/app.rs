//! Application specifications and the builder used by workload generators.
//!
//! An [`AppSpec`] is the static description of a user program: the RDD
//! lineage graph plus the ordered list of actions. It corresponds to what a
//! Spark driver program *would* produce; the DAGScheduler model in
//! [`crate::plan`] turns it into jobs and stages.

use crate::ids::{JobId, RddId};
use crate::rdd::{Dependency, Rdd, StorageLevel};

/// An action on an RDD (e.g. `count`, `collect`). Each action triggers one
/// job.
#[derive(Debug, Clone)]
pub struct Action {
    /// The RDD the action is applied to.
    pub target: RddId,
    /// Descriptive name, for reports.
    pub name: String,
}

/// A complete application: lineage graph plus actions.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name (doubles as the recurring-profile key).
    pub name: String,
    /// RDDs, indexed by `RddId`.
    pub rdds: Vec<Rdd>,
    /// Actions in submission order; index is the `JobId`.
    pub actions: Vec<Action>,
}

impl AppSpec {
    /// Look up an RDD.
    #[inline]
    pub fn rdd(&self, id: RddId) -> &Rdd {
        &self.rdds[id.index()]
    }

    /// All RDDs the program marked cached.
    pub fn cached_rdds(&self) -> impl Iterator<Item = &Rdd> {
        self.rdds.iter().filter(|r| r.is_cached())
    }

    /// Number of jobs the application will submit.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.actions.len()
    }

    /// Total bytes of input RDDs (the paper's "Data Input Size").
    pub fn input_bytes(&self) -> u64 {
        self.rdds
            .iter()
            .filter(|r| r.is_input())
            .map(|r| r.total_size())
            .sum()
    }

    /// Validate structural invariants; used by the builder and by property
    /// tests on generated workloads.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.rdds.iter().enumerate() {
            if r.id.index() != i {
                return Err(format!("rdd at index {i} has id {}", r.id));
            }
            if r.num_partitions == 0 {
                return Err(format!("{} has zero partitions", r.name));
            }
            for d in &r.deps {
                let p = d.parent();
                if p.index() >= i {
                    return Err(format!(
                        "{} depends on {} which is not an earlier RDD (cycle or forward ref)",
                        r.name, p
                    ));
                }
                if !d.is_shuffle() {
                    let pp = self.rdd(p).num_partitions;
                    if pp != r.num_partitions {
                        return Err(format!(
                            "narrow dep {} ({} parts) -> {} ({} parts) must preserve partitioning",
                            self.rdd(p).name,
                            pp,
                            r.name,
                            r.num_partitions
                        ));
                    }
                }
            }
        }
        if self.actions.is_empty() {
            return Err("application has no actions".into());
        }
        for a in &self.actions {
            if a.target.index() >= self.rdds.len() {
                return Err(format!("action {} targets unknown rdd", a.name));
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`AppSpec`]; the API the workload generators (and the
/// examples) are written against. RDDs must be created parents-first, which
/// mirrors how a driver program executes and guarantees the lineage is
/// acyclic by construction.
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    rdds: Vec<Rdd>,
    actions: Vec<Action>,
}

impl AppBuilder {
    /// Start building an application.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            name: name.into(),
            rdds: Vec::new(),
            actions: Vec::new(),
        }
    }

    fn push(&mut self, mut rdd: Rdd) -> RddId {
        let id = RddId(self.rdds.len() as u32);
        rdd.id = id;
        self.rdds.push(rdd);
        id
    }

    /// An input RDD read from external storage.
    pub fn input(
        &mut self,
        name: impl Into<String>,
        partitions: u32,
        block_size: u64,
        compute_us: u64,
    ) -> RddId {
        self.push(Rdd {
            id: RddId(0),
            name: name.into(),
            num_partitions: partitions,
            block_size,
            compute_us,
            storage: StorageLevel::None,
            deps: vec![],
        })
    }

    /// A narrow transformation of one parent (map/filter/flatMap). Preserves
    /// the parent's partitioning.
    pub fn narrow(
        &mut self,
        name: impl Into<String>,
        parent: RddId,
        block_size: u64,
        compute_us: u64,
    ) -> RddId {
        let partitions = self.rdds[parent.index()].num_partitions;
        self.push(Rdd {
            id: RddId(0),
            name: name.into(),
            num_partitions: partitions,
            block_size,
            compute_us,
            storage: StorageLevel::None,
            deps: vec![Dependency::Narrow(parent)],
        })
    }

    /// A narrow transformation of several co-partitioned parents
    /// (zip, union of co-partitioned RDDs, co-partitioned join).
    ///
    /// # Panics
    /// Panics if `parents` is empty or their partition counts differ.
    pub fn narrow_multi(
        &mut self,
        name: impl Into<String>,
        parents: &[RddId],
        block_size: u64,
        compute_us: u64,
    ) -> RddId {
        assert!(
            !parents.is_empty(),
            "narrow_multi needs at least one parent"
        );
        let partitions = self.rdds[parents[0].index()].num_partitions;
        assert!(
            parents
                .iter()
                .all(|p| self.rdds[p.index()].num_partitions == partitions),
            "narrow_multi parents must be co-partitioned"
        );
        self.push(Rdd {
            id: RddId(0),
            name: name.into(),
            num_partitions: partitions,
            block_size,
            compute_us,
            storage: StorageLevel::None,
            deps: parents.iter().map(|&p| Dependency::Narrow(p)).collect(),
        })
    }

    /// A wide transformation (groupByKey, reduceByKey, join with shuffle).
    /// Forces a stage boundary below each parent.
    pub fn shuffle(
        &mut self,
        name: impl Into<String>,
        parents: &[RddId],
        partitions: u32,
        block_size: u64,
        compute_us: u64,
    ) -> RddId {
        assert!(!parents.is_empty(), "shuffle needs at least one parent");
        self.push(Rdd {
            id: RddId(0),
            name: name.into(),
            num_partitions: partitions,
            block_size,
            compute_us,
            storage: StorageLevel::None,
            deps: parents.iter().map(|&p| Dependency::Shuffle(p)).collect(),
        })
    }

    /// A join that shuffles one side and narrowly reads the other (common in
    /// Pregel-style graph programs where the vertex RDD keeps its
    /// partitioner).
    pub fn shuffle_join(
        &mut self,
        name: impl Into<String>,
        narrow_parent: RddId,
        shuffle_parent: RddId,
        block_size: u64,
        compute_us: u64,
    ) -> RddId {
        let partitions = self.rdds[narrow_parent.index()].num_partitions;
        self.push(Rdd {
            id: RddId(0),
            name: name.into(),
            num_partitions: partitions,
            block_size,
            compute_us,
            storage: StorageLevel::None,
            deps: vec![
                Dependency::Narrow(narrow_parent),
                Dependency::Shuffle(shuffle_parent),
            ],
        })
    }

    /// Mark `rdd` cached with the default level (`MemoryOnly`, Spark's
    /// `.cache()`).
    pub fn cache(&mut self, rdd: RddId) -> &mut Self {
        self.persist(rdd, StorageLevel::MemoryOnly)
    }

    /// Mark `rdd` persisted at `level`.
    pub fn persist(&mut self, rdd: RddId, level: StorageLevel) -> &mut Self {
        self.rdds[rdd.index()].storage = level;
        self
    }

    /// Submit an action on `rdd`, creating the next job.
    pub fn action(&mut self, name: impl Into<String>, rdd: RddId) -> JobId {
        let id = JobId(self.actions.len() as u32);
        self.actions.push(Action {
            target: rdd,
            name: name.into(),
        });
        id
    }

    /// Number of RDDs defined so far.
    pub fn num_rdds(&self) -> usize {
        self.rdds.len()
    }

    /// Partition count of an already-defined RDD.
    pub fn partitions_of(&self, rdd: RddId) -> u32 {
        self.rdds[rdd.index()].num_partitions
    }

    /// Finish, validating the spec.
    ///
    /// # Panics
    /// Panics if the spec violates structural invariants — generators are
    /// trusted code and a malformed DAG is a programming error.
    pub fn build(self) -> AppSpec {
        let spec = AppSpec {
            name: self.name,
            rdds: self.rdds,
            actions: self.actions,
        };
        if let Err(e) = spec.validate() {
            panic!("invalid application spec `{}`: {e}", spec.name);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AppSpec {
        // in -> a -> c(shuffle) ; in -> b -> c ; action on c
        let mut b = AppBuilder::new("diamond");
        let input = b.input("in", 4, 100, 10);
        let a = b.narrow("a", input, 100, 10);
        let bb = b.narrow("b", input, 100, 10);
        let c = b.shuffle("c", &[a, bb], 8, 50, 20);
        b.cache(c);
        b.action("count", c);
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let spec = diamond();
        for (i, r) in spec.rdds.iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
    }

    #[test]
    fn narrow_preserves_partitions() {
        let spec = diamond();
        assert_eq!(spec.rdd(RddId(1)).num_partitions, 4);
        assert_eq!(spec.rdd(RddId(3)).num_partitions, 8);
    }

    #[test]
    fn cache_sets_storage_level() {
        let spec = diamond();
        assert!(spec.rdd(RddId(3)).is_cached());
        assert!(!spec.rdd(RddId(0)).is_cached());
        assert_eq!(spec.cached_rdds().count(), 1);
    }

    #[test]
    fn input_bytes_sums_inputs_only() {
        let spec = diamond();
        assert_eq!(spec.input_bytes(), 400);
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let spec = AppSpec {
            name: "bad".into(),
            rdds: vec![Rdd {
                id: RddId(0),
                name: "r".into(),
                num_partitions: 1,
                block_size: 1,
                compute_us: 1,
                storage: StorageLevel::None,
                deps: vec![Dependency::Narrow(RddId(0))], // self-dep
            }],
            actions: vec![Action {
                target: RddId(0),
                name: "count".into(),
            }],
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_no_actions() {
        let mut spec = diamond();
        spec.actions.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_mismatched_narrow_partitions() {
        let mut spec = diamond();
        // Corrupt: make rdd1 narrow-depend on rdd0 but change its partitions.
        spec.rdds[1].num_partitions = 7;
        assert!(spec.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "co-partitioned")]
    fn narrow_multi_rejects_mispartitioned_parents() {
        let mut b = AppBuilder::new("x");
        let p1 = b.input("p1", 4, 1, 1);
        let p2 = b.input("p2", 8, 1, 1);
        b.narrow_multi("z", &[p1, p2], 1, 1);
    }

    #[test]
    fn shuffle_join_mixes_dep_kinds() {
        let mut b = AppBuilder::new("x");
        let v = b.input("vertices", 4, 1, 1);
        let m = b.input("messages", 8, 1, 1);
        let j = b.shuffle_join("joined", v, m, 1, 1);
        b.action("count", j);
        let spec = b.build();
        let deps = &spec.rdd(j).deps;
        assert_eq!(deps.len(), 2);
        assert!(!deps[0].is_shuffle());
        assert!(deps[1].is_shuffle());
        assert_eq!(spec.rdd(j).num_partitions, 4);
    }
}
