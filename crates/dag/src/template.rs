//! Template-interned planning artifacts.
//!
//! A serve stream typically round-robins a handful of application
//! *templates*: submissions whose DAG structure — RDD partition counts,
//! block sizes, compute costs, storage levels, lineage, and action targets —
//! is identical, differing only in which tenant submits them and at what
//! offset their RDD ids land in the combined id space. Planning
//! ([`AppPlan::build`]) and reference analysis ([`RefAnalyzer::profile`])
//! depend only on that structure, so their results can be computed once per
//! distinct template and shared by every repeat submission.
//!
//! [`TemplateCache`] memoizes the local-space `(Arc<AppPlan>,
//! Arc<AppProfile>)` pair per structural identity. Lookups hash the spec's
//! structure directly (no key allocation on the hit path) and confirm
//! candidates with a full structural comparison, so a 64-bit hash collision
//! can never alias two different templates. Human-readable names — the
//! spec's and each RDD's — are deliberately **not** part of the identity:
//! they do not appear in the memoized artifacts (reports take the app name
//! from the spec at hand, and the engine splices RDD names from the spec at
//! admission). Action names *are* part of the identity, because they land
//! in [`JobPlan::action`](crate::plan::JobPlan) inside the cached plan.
//!
//! The cached artifacts stay in *local* RddId space (ids `0..spec.rdds.len()`
//! as the template's own builder assigned them). Per-submission combined-space
//! ids never recycle across a stream — only slot ranges do — so caching any
//! rebased form would miss every time; instead the rebase itself is cheap:
//! [`remap_plan`](crate::tenant::remap_plan) /
//! [`remap_profile`](crate::tenant::remap_profile) share the stage/job/refs
//! spines via `Arc` and copy only the id-bearing parts.

use crate::analyze::{AppProfile, RefAnalyzer};
use crate::app::AppSpec;
use crate::plan::AppPlan;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The memoized local-space planning artifacts of one template.
#[derive(Debug)]
pub struct PlannedTemplate {
    /// The template's plan, in local RddId space.
    pub plan: Arc<AppPlan>,
    /// The template's reference profile, in local RddId space.
    pub profile: Arc<AppProfile>,
}

impl PlannedTemplate {
    /// Plan and profile a spec from scratch (the cache-miss path, also the
    /// cold baseline the `admission` bench measures against).
    pub fn build(spec: &AppSpec) -> PlannedTemplate {
        let plan = Arc::new(AppPlan::build(spec));
        let profile = Arc::new(RefAnalyzer::new(spec, &plan).profile());
        PlannedTemplate { plan, profile }
    }
}

/// Hash the structural identity of a spec: everything planning and analysis
/// read, nothing they do not (spec name, RDD names).
fn structural_hash(spec: &AppSpec) -> u64 {
    let mut h = DefaultHasher::new();
    spec.rdds.len().hash(&mut h);
    for r in &spec.rdds {
        r.num_partitions.hash(&mut h);
        r.block_size.hash(&mut h);
        r.compute_us.hash(&mut h);
        (r.storage as u8).hash(&mut h);
        r.deps.len().hash(&mut h);
        for d in &r.deps {
            d.is_shuffle().hash(&mut h);
            d.parent().0.hash(&mut h);
        }
    }
    spec.actions.len().hash(&mut h);
    for a in &spec.actions {
        a.target.0.hash(&mut h);
        a.name.hash(&mut h);
    }
    h.finish()
}

/// Full structural comparison backing the hash: two specs are the same
/// template iff planning and analysis would produce identical artifacts.
fn structurally_eq(a: &AppSpec, b: &AppSpec) -> bool {
    a.rdds.len() == b.rdds.len()
        && a.actions.len() == b.actions.len()
        && a.rdds.iter().zip(&b.rdds).all(|(x, y)| {
            x.num_partitions == y.num_partitions
                && x.block_size == y.block_size
                && x.compute_us == y.compute_us
                && x.storage == y.storage
                && x.deps == y.deps
        })
        && a.actions
            .iter()
            .zip(&b.actions)
            .all(|(x, y)| x.target == y.target && x.name == y.name)
}

/// Memoizes per-template planning artifacts by structural spec identity.
///
/// One cache serves one stream; entries live for the stream's duration (a
/// stream draws from a fixed catalog of templates, so the cache is bounded
/// by the catalog size — the tier-1 smoke pins this).
#[derive(Debug, Default)]
pub struct TemplateCache {
    /// Hash buckets; each entry keeps the spec that created it so lookups
    /// confirm structural equality rather than trusting the 64-bit hash.
    buckets: HashMap<u64, Vec<(AppSpec, Arc<PlannedTemplate>)>>,
    entries: usize,
    hits: u64,
    misses: u64,
}

impl TemplateCache {
    /// An empty cache.
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// The planning artifacts for `spec`'s template, building them on first
    /// sight. Hits are O(spec) comparison with no allocation.
    pub fn intern(&mut self, spec: &AppSpec) -> Arc<PlannedTemplate> {
        let bucket = self.buckets.entry(structural_hash(spec)).or_default();
        if let Some((_, tpl)) = bucket.iter().find(|(s, _)| structurally_eq(s, spec)) {
            self.hits += 1;
            return Arc::clone(tpl);
        }
        self.misses += 1;
        self.entries += 1;
        let tpl = Arc::new(PlannedTemplate::build(spec));
        bucket.push((spec.clone(), Arc::clone(&tpl)));
        tpl
    }

    /// Number of distinct templates interned.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether no template has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Lookups that returned an existing entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build a new entry.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::rdd::StorageLevel;

    fn app(name: &str, iters: usize, block: u64) -> AppSpec {
        let mut b = AppBuilder::new(name);
        let input = b.input("in", 4, block, 1_000);
        let data = b.narrow("data", input, block, 2_000);
        b.persist(data, StorageLevel::MemoryAndDisk);
        for i in 0..iters {
            let agg = b.shuffle(format!("agg{i}"), &[data], 4, block / 8, 500);
            b.action(format!("job{i}"), agg);
        }
        b.build()
    }

    #[test]
    fn repeat_submissions_share_one_entry() {
        let mut cache = TemplateCache::new();
        let spec = app("a", 2, 1 << 10);
        let first = cache.intern(&spec);
        for _ in 0..10 {
            let again = cache.intern(&spec);
            assert!(Arc::ptr_eq(&first, &again));
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 10);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn names_do_not_split_templates_but_structure_does() {
        let mut cache = TemplateCache::new();
        let a = cache.intern(&app("alpha", 2, 1 << 10));
        // Different spec name, same structure: same template.
        let b = cache.intern(&app("beta", 2, 1 << 10));
        assert!(Arc::ptr_eq(&a, &b));
        // Different structure: new templates.
        cache.intern(&app("alpha", 3, 1 << 10));
        cache.intern(&app("alpha", 2, 1 << 11));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn action_names_are_part_of_the_identity() {
        // Action names are baked into JobPlan::action inside the cached
        // plan, so templates differing only there must not alias.
        let mk = |action: &str| {
            let mut b = AppBuilder::new("same");
            let input = b.input("in", 2, 64, 10);
            b.cache(input);
            b.action(action, input);
            b.build()
        };
        let mut cache = TemplateCache::new();
        let a = cache.intern(&mk("count"));
        let b = cache.intern(&mk("collect"));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.buckets.len(), 2, "hashes should differ too");
    }

    #[test]
    fn interned_artifacts_match_cold_build() {
        let spec = app("a", 3, 1 << 12);
        let cold = PlannedTemplate::build(&spec);
        let mut cache = TemplateCache::new();
        let hot = cache.intern(&spec);
        assert_eq!(format!("{:?}", cold.plan), format!("{:?}", hot.plan));
        assert_eq!(format!("{:?}", cold.profile), format!("{:?}", hot.profile));
    }

    #[test]
    fn hash_collisions_cannot_alias_templates() {
        // Force both entries into one bucket: even then, the structural
        // comparison keeps them apart.
        let x = app("x", 1, 1 << 10);
        let y = app("y", 2, 1 << 10);
        let mut cache = TemplateCache::new();
        let tx = cache.intern(&x);
        cache
            .buckets
            .entry(structural_hash(&y))
            .or_default()
            .clear();
        let moved = cache.buckets.remove(&structural_hash(&y));
        drop(moved);
        let h = structural_hash(&x);
        // Reinsert y's entry under x's hash bucket.
        let ty = Arc::new(PlannedTemplate::build(&y));
        cache
            .buckets
            .get_mut(&h)
            .unwrap()
            .push((y.clone(), Arc::clone(&ty)));
        let got_x = cache.intern(&x);
        assert!(Arc::ptr_eq(&tx, &got_x));
        let got_y = cache
            .buckets
            .get(&h)
            .unwrap()
            .iter()
            .find(|(s, _)| structurally_eq(s, &y))
            .map(|(_, t)| Arc::clone(t))
            .unwrap();
        assert!(Arc::ptr_eq(&ty, &got_y));
    }
}
