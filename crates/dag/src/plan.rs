//! DAGScheduler-style job and stage construction.
//!
//! Reproduces the part of Spark's `DAGScheduler` the MRD paper builds on:
//! each action submits a job; walking the lineage backwards from the action's
//! RDD, the job is split into stages at shuffle dependencies; stage IDs are
//! assigned in creation order with parents created before children, so stage
//! IDs increase monotonically across the application — the "sequentially
//! numbered StageID" property reference distances are measured against
//! (paper §3.2).
//!
//! Shuffle-map stages are shared across jobs (keyed by their shuffle edge),
//! exactly like Spark's `shuffleIdToMapStage`: a later job that re-uses a
//! shuffle sees the stage in its DAG but skips executing it, because the
//! shuffle files already exist. Consequently every stage *executes* at most
//! once, in the first job that contains it, and the execution order of active
//! stages is exactly stage-ID order (IDs are assigned parents-first within a
//! job and jobs run in submission order).

use crate::app::AppSpec;
use crate::ids::{JobId, RddId, StageId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What a stage produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Map side of a shuffle: computes `final_rdd` and writes shuffle files
    /// for `child` to read.
    ShuffleMap {
        /// The shuffle child RDD that consumes this stage's output.
        child: RddId,
    },
    /// Final stage of a job: computes the action's target RDD.
    Result,
}

/// A planned stage.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage ID (creation order; also execution order).
    pub id: StageId,
    /// The job that created (and will execute) this stage.
    pub job: JobId,
    /// The last RDD of the stage's pipelined narrow chain.
    pub final_rdd: RddId,
    /// Map side of a shuffle, or a job's result stage.
    pub kind: StageKind,
    /// All RDDs reachable from `final_rdd` through narrow dependencies
    /// (the pipelined set), in deterministic discovery order.
    pub rdds: Vec<RddId>,
    /// Parent shuffle-map stages this stage reads from. Shared (`Arc`) so
    /// tenant remapping can rebase a stage without cloning the parent list —
    /// stage IDs are app-local and never shift.
    pub parents: Arc<[StageId]>,
    /// One task per partition of `final_rdd`.
    pub num_tasks: u32,
}

/// A planned job: the stage sub-DAG one action produced.
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// Job ID (submission order).
    pub id: JobId,
    /// Action name, for reports.
    pub action: String,
    /// Every stage appearing in this job's DAG, in stage-ID order. Includes
    /// stages created by earlier jobs (those will be *skipped* at runtime).
    pub stages: Vec<StageId>,
    /// The job's result stage.
    pub result_stage: StageId,
}

/// The full application plan: all jobs and all distinct stages.
#[derive(Debug, Clone)]
pub struct AppPlan {
    /// Distinct stages, indexed by `StageId`. Stage-ID order is a valid
    /// execution order (parents first, jobs in submission order).
    pub stages: Vec<Stage>,
    /// Jobs in submission order. Shared (`Arc`): job plans hold only
    /// stage/job IDs and action names, none of which shift under tenant
    /// remapping, so every rebased copy of a template points at one list.
    pub jobs: Arc<[JobPlan]>,
}

impl AppPlan {
    /// Build the plan for an application.
    pub fn build(spec: &AppSpec) -> AppPlan {
        Planner::new(spec).plan()
    }

    /// Look up a stage.
    #[inline]
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    /// Stages a given job will actually execute (those it created), in order.
    pub fn active_stages_of_job(&self, job: JobId) -> impl Iterator<Item = &Stage> {
        self.stages.iter().filter(move |s| s.job == job)
    }

    /// Stages of a job that appear in its DAG but were created by an earlier
    /// job — shown as "skipped" in the Spark UI.
    pub fn skipped_stages_of_job(&self, job: JobId) -> Vec<StageId> {
        let jp = &self.jobs[job.index()];
        jp.stages
            .iter()
            .copied()
            .filter(|&s| self.stage(s).job != job)
            .collect()
    }

    /// Total stage appearances across all job DAGs (the paper's Table 3
    /// "Stages" column).
    pub fn total_stage_appearances(&self) -> usize {
        self.jobs.iter().map(|j| j.stages.len()).sum()
    }

    /// Number of distinct stages that execute (Table 3 "Active Stages").
    pub fn active_stage_count(&self) -> usize {
        self.stages.len()
    }
}

/// Collect all RDDs reachable from `from` through narrow dependencies, in
/// deterministic DFS discovery order (the stage's pipelined set).
pub fn narrow_set(spec: &AppSpec, from: RddId) -> Vec<RddId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        out.push(v);
        // Reverse so the first-declared parent is visited first.
        for p in spec
            .rdd(v)
            .narrow_parents()
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            stack.push(p);
        }
    }
    out
}

/// Collect the shuffle edges `(map_side_parent, shuffle_child)` at the narrow
/// frontier of `from`, in deterministic discovery order.
pub fn shuffle_frontier(spec: &AppSpec, from: RddId) -> Vec<(RddId, RddId)> {
    let mut edges = Vec::new();
    let mut edge_seen = HashSet::new();
    for v in narrow_set(spec, from) {
        for d in &spec.rdd(v).deps {
            if d.is_shuffle() {
                let e = (d.parent(), v);
                if edge_seen.insert(e) {
                    edges.push(e);
                }
            }
        }
    }
    edges
}

struct Planner<'a> {
    spec: &'a AppSpec,
    stages: Vec<Stage>,
    /// Shuffle-map stage registry keyed by shuffle edge (parent, child) —
    /// the analogue of Spark's `shuffleIdToMapStage`.
    shuffle_stages: HashMap<(RddId, RddId), StageId>,
}

impl<'a> Planner<'a> {
    fn new(spec: &'a AppSpec) -> Self {
        Planner {
            spec,
            stages: Vec::new(),
            shuffle_stages: HashMap::new(),
        }
    }

    fn plan(mut self) -> AppPlan {
        let mut jobs = Vec::with_capacity(self.spec.actions.len());
        for (ji, action) in self.spec.actions.iter().enumerate() {
            let job = JobId(ji as u32);
            let parents = self.parent_stages(action.target, job);
            let result_stage = self.create_stage(job, action.target, StageKind::Result, parents);
            // The job's DAG: the result stage plus everything reachable
            // through stage parents (shared stages included).
            let mut in_job = HashSet::new();
            let mut stack = vec![result_stage];
            while let Some(s) = stack.pop() {
                if !in_job.insert(s) {
                    continue;
                }
                stack.extend(self.stages[s.index()].parents.iter().copied());
            }
            let mut stage_list: Vec<StageId> = in_job.into_iter().collect();
            stage_list.sort_unstable();
            jobs.push(JobPlan {
                id: job,
                action: action.name.clone(),
                stages: stage_list,
                result_stage,
            });
        }
        AppPlan {
            stages: self.stages,
            jobs: jobs.into(),
        }
    }

    /// Get-or-create the parent shuffle-map stages of `rdd` (Spark's
    /// `getOrCreateParentStages`). Recursion creates ancestors first, so
    /// parents always receive lower stage IDs.
    fn parent_stages(&mut self, rdd: RddId, job: JobId) -> Vec<StageId> {
        let mut parents = Vec::new();
        for edge in shuffle_frontier(self.spec, rdd) {
            let sid = self.shuffle_stage_for(edge, job);
            if !parents.contains(&sid) {
                parents.push(sid);
            }
        }
        parents
    }

    fn shuffle_stage_for(&mut self, edge: (RddId, RddId), job: JobId) -> StageId {
        if let Some(&sid) = self.shuffle_stages.get(&edge) {
            return sid;
        }
        let (map_rdd, child) = edge;
        let grand = self.parent_stages(map_rdd, job);
        let sid = self.create_stage(job, map_rdd, StageKind::ShuffleMap { child }, grand);
        self.shuffle_stages.insert(edge, sid);
        sid
    }

    fn create_stage(
        &mut self,
        job: JobId,
        final_rdd: RddId,
        kind: StageKind,
        parents: Vec<StageId>,
    ) -> StageId {
        let id = StageId(self.stages.len() as u32);
        let rdds = narrow_set(self.spec, final_rdd);
        let num_tasks = self.spec.rdd(final_rdd).num_partitions;
        self.stages.push(Stage {
            id,
            job,
            final_rdd,
            kind,
            rdds,
            parents: parents.into(),
            num_tasks,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;

    /// in -> m1 -> s1(shuffle) -> m2 -> s2(shuffle); actions on s1 then s2.
    fn two_job_chain() -> AppSpec {
        let mut b = AppBuilder::new("chain");
        let input = b.input("in", 4, 100, 10);
        let m1 = b.narrow("m1", input, 100, 10);
        let s1 = b.shuffle("s1", &[m1], 4, 100, 10);
        b.cache(s1);
        b.action("count-s1", s1);
        let m2 = b.narrow("m2", s1, 100, 10);
        let s2 = b.shuffle("s2", &[m2], 4, 100, 10);
        b.action("count-s2", s2);
        b.build()
    }

    #[test]
    fn single_job_splits_at_shuffles() {
        let mut b = AppBuilder::new("one");
        let input = b.input("in", 4, 100, 10);
        let m = b.narrow("m", input, 100, 10);
        let s = b.shuffle("s", &[m], 8, 100, 10);
        let t = b.narrow("t", s, 100, 10);
        b.action("collect", t);
        let plan = AppPlan::build(&b.build());

        assert_eq!(plan.stages.len(), 2);
        let map = plan.stage(StageId(0));
        let result = plan.stage(StageId(1));
        assert!(matches!(map.kind, StageKind::ShuffleMap { .. }));
        assert_eq!(map.final_rdd, RddId(1)); // m
        assert_eq!(map.num_tasks, 4);
        assert_eq!(result.kind, StageKind::Result);
        assert_eq!(result.final_rdd, RddId(3)); // t
        assert_eq!(result.num_tasks, 8);
        assert_eq!(&*result.parents, &[StageId(0)]);
    }

    #[test]
    fn parents_get_lower_ids() {
        let plan = AppPlan::build(&two_job_chain());
        for s in &plan.stages {
            for &p in s.parents.iter() {
                assert!(p < s.id, "parent {p} should precede {}", s.id);
            }
        }
    }

    #[test]
    fn shuffle_stages_shared_across_jobs() {
        let plan = AppPlan::build(&two_job_chain());
        // Job 0: map(m1) + result(s1). Job 1: reuses map(m1) shuffle? No —
        // job 1's DAG is: map(m1)->s1 ... wait: job 1 shuffles m2 (which
        // narrow-reads s1). s1 is a shuffle child, so job 1's map stage for
        // the s2 shuffle has final rdd m2, whose narrow set reaches s1 and
        // stops at s1's shuffle dep, whose map stage (m1) already exists.
        // So: stages = [map(m1), result(s1), map(m2), result(s2)].
        assert_eq!(plan.stages.len(), 4);
        let job1 = &plan.jobs[1];
        // Job 1's DAG contains the shared map(m1) stage...
        assert!(job1.stages.contains(&StageId(0)));
        // ...but it is skipped (created by job 0).
        assert_eq!(plan.skipped_stages_of_job(JobId(1)), vec![StageId(0)]);
    }

    #[test]
    fn stage_appearance_vs_active_counts() {
        let plan = AppPlan::build(&two_job_chain());
        // Job 0 DAG: 2 stages. Job 1 DAG: map(m1)+map(m2)+result = 3.
        assert_eq!(plan.total_stage_appearances(), 5);
        assert_eq!(plan.active_stage_count(), 4);
    }

    #[test]
    fn narrow_set_stops_at_shuffle() {
        let spec = two_job_chain();
        // m2 narrow-reaches s1 but not below (s1's dep is a shuffle).
        let set = narrow_set(&spec, RddId(3)); // m2
        assert_eq!(set, vec![RddId(3), RddId(2)]);
    }

    #[test]
    fn shuffle_frontier_finds_edges() {
        let spec = two_job_chain();
        let edges = shuffle_frontier(&spec, RddId(3)); // from m2
        assert_eq!(edges, vec![(RddId(1), RddId(2))]); // m1 -> s1
    }

    #[test]
    fn diamond_creates_two_map_stages() {
        // in -> a -> c ; in -> b -> c where c shuffles both a and b.
        let mut b = AppBuilder::new("diamond");
        let input = b.input("in", 4, 100, 10);
        let a = b.narrow("a", input, 100, 10);
        let bb = b.narrow("b", input, 100, 10);
        let c = b.shuffle("c", &[a, bb], 4, 100, 10);
        b.action("count", c);
        let plan = AppPlan::build(&b.build());
        assert_eq!(plan.stages.len(), 3);
        let result = plan.stage(StageId(2));
        assert_eq!(result.parents.len(), 2);
        // Both map stages pipeline the shared input.
        assert!(plan.stage(StageId(0)).rdds.contains(&input));
        assert!(plan.stage(StageId(1)).rdds.contains(&input));
    }

    #[test]
    fn active_execution_order_is_id_order() {
        let plan = AppPlan::build(&two_job_chain());
        // Stage ids grouped by job, ascending: job of each stage must be
        // non-decreasing in id order.
        let jobs: Vec<u32> = plan.stages.iter().map(|s| s.job.0).collect();
        let mut sorted = jobs.clone();
        sorted.sort_unstable();
        assert_eq!(jobs, sorted);
    }

    #[test]
    fn job_stage_lists_are_sorted_and_contain_result() {
        let plan = AppPlan::build(&two_job_chain());
        for j in plan.jobs.iter() {
            assert!(j.stages.windows(2).all(|w| w[0] < w[1]));
            assert!(j.stages.contains(&j.result_stage));
        }
    }

    #[test]
    fn same_shuffle_twice_in_one_job_is_single_stage() {
        // c and d both shuffle the same parent m via *different* edges;
        // each edge gets its own map stage, matching Spark's one shuffle
        // dependency per (parent, consumer) pair.
        let mut b = AppBuilder::new("fanout");
        let input = b.input("in", 4, 100, 10);
        let m = b.narrow("m", input, 100, 10);
        let c = b.shuffle("c", &[m], 4, 100, 10);
        let d = b.shuffle("d", &[m], 4, 100, 10);
        let joined = b.narrow_multi("z", &[c, d], 100, 10);
        b.action("count", joined);
        let plan = AppPlan::build(&b.build());
        // map(m->c), map(m->d), result
        assert_eq!(plan.stages.len(), 3);
    }

    #[test]
    fn multi_partition_counts_flow_to_tasks() {
        let mut b = AppBuilder::new("parts");
        let input = b.input("in", 6, 100, 10);
        let s = b.shuffle("s", &[input], 12, 100, 10);
        b.action("count", s);
        let plan = AppPlan::build(&b.build());
        assert_eq!(plan.stage(StageId(0)).num_tasks, 6);
        assert_eq!(plan.stage(StageId(1)).num_tasks, 12);
    }
}
