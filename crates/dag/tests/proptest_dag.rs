//! Property tests on DAG planning primitives over randomly shaped lineages.

use proptest::prelude::*;
use refdist_dag::{plan, AppBuilder, AppPlan, AppSpec, RefAnalyzer, StorageLevel};

/// Build a random but valid lineage: each new RDD picks an existing parent
/// and a transformation kind.
fn random_spec(choices: &[(u8, u8, bool)]) -> AppSpec {
    let mut b = AppBuilder::new("random");
    let mut rdds = vec![b.input("in", 4, 1024, 100)];
    for (i, &(kind, parent, cache)) in choices.iter().enumerate() {
        let p = rdds[parent as usize % rdds.len()];
        let r = match kind % 3 {
            0 => b.narrow(format!("n{i}"), p, 1024, 100),
            1 => b.shuffle(format!("s{i}"), &[p], 4, 512, 100),
            _ => {
                let q = rdds[(parent as usize / 2) % rdds.len()];
                b.shuffle(format!("j{i}"), &[p, q], 4, 512, 100)
            }
        };
        if cache {
            b.persist(r, StorageLevel::MemoryAndDisk);
        }
        rdds.push(r);
    }
    let last = *rdds.last().unwrap();
    b.action("final", last);
    // A second action earlier in the lineage exercises stage sharing.
    let mid = rdds[rdds.len() / 2];
    b.action("mid", mid);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn narrow_sets_never_cross_shuffles(choices in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..30)) {
        let spec = random_spec(&choices);
        let p = AppPlan::build(&spec);
        for stage in &p.stages {
            for &r in &stage.rdds {
                // Every member is reachable from the final RDD via narrow
                // deps only: recomputing membership must agree.
                prop_assert!(plan::narrow_set(&spec, stage.final_rdd).contains(&r));
            }
            // The frontier's map stages are exactly the stage's parents.
            let frontier = plan::shuffle_frontier(&spec, stage.final_rdd);
            prop_assert_eq!(frontier.len(), {
                // Parents may be deduplicated when two edges share a stage.
                let mut ids = stage.parents.to_vec();
                ids.sort_unstable();
                ids.dedup();
                let mut fr: Vec<_> = frontier
                    .iter()
                    .map(|e| {
                        p.stages
                            .iter()
                            .find(|s| s.final_rdd == e.0 && matches!(s.kind, plan::StageKind::ShuffleMap { child } if child == e.1))
                            .map(|s| s.id)
                            .expect("frontier edge has a stage")
                    })
                    .collect();
                fr.sort_unstable();
                fr.dedup();
                prop_assert_eq!(&ids, &fr);
                frontier.len()
            });
        }
    }

    #[test]
    fn execution_order_equals_id_order(choices in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..30)) {
        let spec = random_spec(&choices);
        let p = AppPlan::build(&spec);
        // Stage ids grouped by creating job, non-decreasing.
        let jobs: Vec<u32> = p.stages.iter().map(|s| s.job.0).collect();
        let mut sorted = jobs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(jobs, sorted);
        // Skipped stages of a job were always created by an earlier job.
        for job in p.jobs.iter() {
            for s in p.skipped_stages_of_job(job.id) {
                prop_assert!(p.stage(s).job < job.id);
            }
        }
    }

    #[test]
    fn analyzer_profile_consistent_with_plan(choices in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..30)) {
        let spec = random_spec(&choices);
        let p = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &p).profile();
        prop_assert_eq!(profile.per_stage.len(), p.stages.len());
        // A stage's recorded reads/creates all appear in its pipelined set.
        for (i, touches) in profile.per_stage.iter().enumerate() {
            let stage = &p.stages[i];
            for r in touches.reads.iter().chain(&touches.creates) {
                prop_assert!(stage.rdds.contains(r));
            }
        }
        // Each cached RDD is created exactly once across all stages.
        let mut created = std::collections::HashSet::new();
        for t in &profile.per_stage {
            for r in &t.creates {
                prop_assert!(created.insert(*r), "rdd created twice");
            }
        }
        // Total refs = creates + reads.
        let touches: usize = profile
            .per_stage
            .iter()
            .map(|t| t.reads.len() + t.creates.len())
            .sum();
        prop_assert_eq!(touches, profile.total_references());
    }

    #[test]
    fn dot_exports_are_balanced(choices in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..20)) {
        let spec = random_spec(&choices);
        let p = AppPlan::build(&spec);
        for text in [
            refdist_dag::dot::lineage_dot(&spec),
            refdist_dag::dot::stage_dot(&spec, &p),
        ] {
            prop_assert_eq!(text.matches('{').count(), text.matches('}').count());
            prop_assert!(text.starts_with("digraph"));
        }
    }
}
