#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from the repo root.
#
#   ./ci.sh
#
# Mirrors what a hosted pipeline would run; every step must pass. The
# tier-1 subset (release build + root-package tests) comes first so the
# cheapest signal fails fastest, then the full workspace test suite and
# clippy with warnings promoted to errors.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Fault-injection suites, run explicitly so a chaos regression is named in
# the CI log even though the workspace pass above already covers them:
# randomized FaultPlans (termination + conserved accounting + replay
# determinism) and the empty-plan byte-invisibility differential.
echo "==> cargo test -q -p refdist-cluster --test proptest_faults --test differential_faults"
cargo test -q -p refdist-cluster --test proptest_faults --test differential_faults

# Serve-mode suites, likewise named explicitly: the single-submission
# serve-vs-legacy-engine differential (equivalence by construction) and the
# sweep determinism suite, whose serve cells prove multi-tenant streams are
# thread-count-proof and Poisson arrivals replay from the master seed.
echo "==> cargo test -q -p refdist-cluster --test differential_serve"
cargo test -q -p refdist-cluster --test differential_serve
echo "==> cargo test -q -p refdist-bench --test determinism"
cargo test -q -p refdist-bench --test determinism

# Event-engine suites: the calendar-vs-heap pop-order property (adversarial
# schedules: same-instant floods, far-future outliers, schedule-mid-drain)
# and the full-simulation differential proving `SimConfig::heap_events` off
# vs on is byte-identical across solo, chaos and serve runs.
echo "==> cargo test -q -p refdist-simcore --test proptest_simcore"
cargo test -q -p refdist-simcore --test proptest_simcore
echo "==> cargo test -q -p refdist-cluster --test differential_events"
cargo test -q -p refdist-cluster --test differential_events

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Bench smoke: every criterion suite runs each benchmark body once
# (--test mode). Guards against bit-rotted bench code; timing is NOT
# checked, so this cannot flake on a noisy machine.
for suite in policy_overhead dag_planning sim_throughput victim_selection sched_scaling event_queue; do
  echo "==> cargo bench -p refdist-bench --bench $suite -- --test"
  cargo bench -q -p refdist-bench --bench "$suite" -- --test
done

# Protocol-bench smoke: run the recorded-bench binaries in quick mode in a
# scratch dir so the checked-in BENCH_*.json files are not clobbered. This
# exercises the full record-and-write path, including the linear-vs-indexed
# scheduler equivalence assertions inside bench_sched.
( bench_tmp="$(mktemp -d)"
  trap 'rm -rf "$bench_tmp"' EXIT
  cd "$bench_tmp"
  echo "==> REFDIST_QUICK=1 bench_sched (scratch dir)"
  REFDIST_QUICK=1 cargo run --release -q -p refdist-bench --bin bench_sched \
    --manifest-path "$OLDPWD/Cargo.toml" --target-dir "$OLDPWD/target"

  # Chaos CLI smoke: a tiny resilience curve must run end-to-end (fault
  # injection -> sweep -> degradation table) and exit zero.
  echo "==> refdist chaos smoke (scratch dir)"
  "$OLDPWD/target/release/refdist" chaos SP --policies lru,lrc,mrd \
    --rates 0.05 --nodes 2 --partitions 8 --scale 0.02 --threads 2 \
    --csv > chaos_smoke.csv
  grep -q '^0.0500,MRD' chaos_smoke.csv \
    || { echo "chaos smoke: missing chaotic MRD row"; exit 1; }

  # Serve CLI smoke: a tiny multi-tenant stream must run the full
  # sched x quota grid end-to-end and report per-tenant JCT distributions.
  echo "==> refdist serve smoke (scratch dir)"
  "$OLDPWD/target/release/refdist" serve SP --policy lru --tenants 3 \
    --gap-ms 100 --nodes 2 --partitions 8 --scale 0.02 \
    --cache-fraction 0.3 > serve_smoke.txt
  grep -q 'fair-share, quota equal-share' serve_smoke.txt \
    || { echo "serve smoke: missing fair-share/equal-share cell"; exit 1; }
  grep -q '^tenant 2: .* p99 ' serve_smoke.txt \
    || { echo "serve smoke: missing per-tenant JCT distribution"; exit 1; }

  # Resilient-serve CLI smoke: wall-clock churn + app retries + a bounded
  # admission gate + a deadline must run end-to-end and report the
  # stream-level resilience line and SLO attainment.
  echo "==> refdist serve --churn smoke (scratch dir)"
  "$OLDPWD/target/release/refdist" serve SP --policy lru --tenants 3 \
    --gap-ms 100 --nodes 2 --partitions 8 --scale 0.02 \
    --cache-fraction 0.3 --scheds fair-share --quotas unlimited \
    --churn 300,100 --app-retries 2 --max-active 2 --admission queue \
    --deadline 20000000 > serve_churn_smoke.txt
  grep -q 'resilience: churn mtbf 300ms mttr 100ms, 2 app retries' serve_churn_smoke.txt \
    || { echo "serve churn smoke: missing resilience header"; exit 1; }
  grep -q '^slo: .* met the 20.000s deadline' serve_churn_smoke.txt \
    || { echo "serve churn smoke: missing SLO attainment line"; exit 1; }

  # Serve x chaos smoke: the SLO-attainment-vs-churn-rate curve must run
  # end-to-end and the fault-free row must attain its self-calibrated
  # deadline in full.
  echo "==> refdist chaos --serve smoke (scratch dir)"
  "$OLDPWD/target/release/refdist" chaos SP --serve --policies lru \
    --rates 0,0.5 --nodes 2 --partitions 8 --scale 0.02 --tenants 2 \
    --apps 4 --gap-ms 50 --csv > chaos_serve_smoke.csv
  grep -q '^LRU,0.0000,.*,1.0000,' chaos_serve_smoke.csv \
    || { echo "chaos serve smoke: fault-free row must attain 100%"; exit 1; }

  # Heterogeneous-mix smoke: a stream cycling through two workloads must
  # intern exactly two templates under streaming admission.
  echo "==> refdist serve --mix smoke (scratch dir)"
  "$OLDPWD/target/release/refdist" serve --mix SP,CC --policy lru \
    --tenants 2 --apps 8 --gap-ms 50 --nodes 2 --partitions 8 --scale 0.02 \
    --cache-fraction 0.3 --scheds fifo --quotas unlimited > serve_mix.txt
  grep -q '^SP+CC x 2 tenants' serve_mix.txt \
    || { echo "serve mix smoke: missing mixed-stream header"; exit 1; }
  grep -q 'admission: 2 distinct templates interned over 8 submissions' serve_mix.txt \
    || { echo "serve mix smoke: missing interned-template accounting"; exit 1; }
)

# Show hot-path deltas when both recorded benchmark files are present
# (informational; bench_diff only fails on missing/corrupt files).
if [[ -f BENCH_baseline.json && -f BENCH_pr2.json ]]; then
  echo "==> bench_diff BENCH_baseline.json BENCH_pr2.json"
  cargo run --release -q -p refdist-bench --bin bench_diff
fi

# Bench regression guard: compare the two newest recorded BENCH_pr*.json
# files and fail if any joined metric regressed more than 10%. Each file
# is recorded on one machine — as one bench_sched invocation or, when the
# machine's throughput drifts in multi-minute phases, as the per-record
# best (minimum) of a dozen alternating old/new invocations: both sides
# sampled in the same windows so the comparison stays apples-to-apples,
# and the minimum because the workload is deterministic so noise is
# strictly additive — the median flaps with whichever phase a round
# lands in (pr8/pr9 were re-baselined with alternating medians, pr9/pr10
# with alternating best-of-12, each same-day/same-machine). Set
# REFDIST_SKIP_BENCH_GUARD=1 to skip (e.g. when re-recording baselines
# on different hardware).
if [[ "${REFDIST_SKIP_BENCH_GUARD:-0}" != "1" ]]; then
  mapfile -t bench_files < <(ls BENCH_pr*.json 2>/dev/null | sort -V)
  if (( ${#bench_files[@]} >= 2 )); then
    prev="${bench_files[-2]}"
    newest="${bench_files[-1]}"
    echo "==> bench_diff --check --max-regress 10 $prev $newest"
    cargo run --release -q -p refdist-bench --bin bench_diff -- \
      --check --max-regress 10 "$prev" "$newest"
  fi
fi

echo "ci.sh: all checks passed"
