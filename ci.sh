#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from the repo root.
#
#   ./ci.sh
#
# Mirrors what a hosted pipeline would run; every step must pass. The
# tier-1 subset (release build + root-package tests) comes first so the
# cheapest signal fails fastest, then the full workspace test suite and
# clippy with warnings promoted to errors.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
