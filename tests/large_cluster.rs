//! Large-cluster smoke tests: the indexed task-slot scheduler at 128+ nodes
//! with delay scheduling, a straggler, and real eviction pressure. Tier-1 —
//! this is the scale regime the slot index exists for, so it must keep
//! working (and keep agreeing with the linear reference scheduler) on every
//! change.

use refdist::cluster::EngineScratch;
use refdist::prelude::*;

/// Wide iterative app: 8 partitions per node, one cached dataset reused by
/// several jobs, so each stage schedules multiple task waves per node.
fn wide_app(nodes: u32) -> AppSpec {
    let parts = nodes * 8;
    let block = 64 * 1024;
    let mut b = AppBuilder::new("large-cluster");
    let input = b.input("in", parts, block, 2_000);
    let data = b.narrow("data", input, block, 5_000);
    b.persist(data, StorageLevel::MemoryAndDisk);
    for i in 0..3 {
        let s = b.shuffle(format!("agg{i}"), &[data], parts, block / 4, 1_000);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn large_cfg(nodes: u32, cache: u64) -> SimConfig {
    let mut cfg = SimConfig::new(ClusterConfig::tiny(nodes, cache));
    cfg.cluster.cores_per_node = 4;
    cfg.compute_jitter = 0.0;
    cfg.delay_scheduling_us = Some(5_000);
    cfg.faults.slow_node(0, 4.0);
    cfg
}

#[test]
fn simulates_128_nodes_with_delay_scheduling_and_migrations() {
    let nodes = 128;
    let spec = wide_app(nodes);
    let plan = AppPlan::build(&spec);
    let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, large_cfg(nodes, 1 << 40));
    let mut lru = PolicyKind::Lru.build();
    let r = sim.run(&mut *lru);

    assert_eq!(r.tasks, plan.stages.iter().map(|s| s.num_tasks as u64).sum::<u64>());
    assert_eq!(
        r.sched.home_placements + r.sched.remote_placements,
        r.tasks,
        "every task is placed exactly once"
    );
    assert!(
        r.sched.remote_placements > 0,
        "the straggler must force delay-scheduled migrations at 128 nodes"
    );
    assert!(r.summary().contains("delay-scheduled remotely"));
}

#[test]
fn indexed_matches_linear_at_128_nodes() {
    let nodes = 128;
    let spec = wide_app(nodes);
    let plan = AppPlan::build(&spec);
    // Under cache pressure (half the cached footprint fits) so eviction and
    // scheduling interact.
    let cache: u64 = spec.cached_rdds().map(|r| r.total_size()).sum::<u64>() / 2;

    let mut reports = Vec::new();
    for linear in [true, false] {
        let mut cfg = large_cfg(nodes, cache.max(1));
        cfg.linear_sched = linear;
        cfg.collect_placements = true;
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
        let mut lru = PolicyKind::Lru.build();
        reports.push(sim.run(&mut *lru));
    }
    assert_eq!(
        format!("{:?}", reports[0]),
        format!("{:?}", reports[1]),
        "linear and indexed schedulers must be indistinguishable at 128 nodes"
    );
}

#[test]
fn shared_artifacts_and_scratch_reuse_hold_at_scale() {
    let nodes = 128;
    let spec = wide_app(nodes);
    let plan = AppPlan::build(&spec);
    let cfg = large_cfg(nodes, 1 << 40);

    let base = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone());
    let mut fresh_lru = PolicyKind::Lru.build();
    let fresh = base.run(&mut *fresh_lru);

    // Re-run twice through shared artifacts and one recycled scratch.
    let mut scratch = EngineScratch::default();
    for _ in 0..2 {
        let (profiler, arena) = base.artifacts();
        let sim = Simulation::with_artifacts(&spec, &plan, profiler, arena, cfg.clone());
        let mut lru = PolicyKind::Lru.build();
        let shared = sim.run_with_scratch(&mut *lru, &mut scratch);
        assert_eq!(format!("{fresh:?}"), format!("{shared:?}"));
    }
}
