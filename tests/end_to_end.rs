//! End-to-end integration tests: workload generation → DAG planning →
//! reference analysis → cluster simulation under every policy.

use refdist::cluster::collect_trace;
use refdist::policies::BeladyMinPolicy;
use refdist::prelude::*;

fn small_params() -> WorkloadParams {
    WorkloadParams {
        partitions: 16,
        scale: 0.05,
        iterations: None,
    }
}

fn cfg(nodes: u32, cache: u64) -> SimConfig {
    let mut c = SimConfig::new(ClusterConfig::tiny(nodes, cache));
    c.compute_jitter = 0.0;
    c
}

fn footprint(spec: &AppSpec) -> u64 {
    spec.cached_rdds().map(|r| r.total_size()).sum()
}

#[test]
fn every_workload_simulates_under_every_policy() {
    let params = small_params();
    for &w in Workload::sparkbench().iter().chain(Workload::hibench()) {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        let cache = (footprint(&spec) / 8).max(1);
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg(4, cache));
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::Lrc,
            PolicyKind::MemTune,
        ] {
            let mut p = kind.build();
            let r = sim.run(&mut *p);
            assert!(r.jct.micros() > 0, "{w}: {kind:?} produced zero JCT");
            assert_eq!(
                r.stats.accesses(),
                r.stats.hits + r.stats.misses,
                "{w}: accounting broken under {kind:?}"
            );
        }
        let mut mrd = MrdPolicy::full();
        let r = sim.run(&mut mrd);
        assert!(r.jct.micros() > 0, "{w}: MRD produced zero JCT");
    }
}

#[test]
fn mrd_never_loses_badly_and_usually_wins() {
    // Across the SparkBench suite at a constrained cache, MRD must match or
    // beat LRU's hit ratio on the vast majority of workloads and never lose
    // more than a whisker (ties happen when nothing is cacheable).
    let params = small_params();
    let mut wins = 0;
    let mut total = 0;
    for &w in Workload::sparkbench() {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        let cache = (footprint(&spec) / 6).max(1);
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg(4, cache));
        let mut lru = PolicyKind::Lru.build();
        let r_lru = sim.run(&mut *lru);
        let mut mrd = MrdPolicy::full();
        let r_mrd = sim.run(&mut mrd);
        total += 1;
        if r_mrd.hit_ratio() > r_lru.hit_ratio() + 1e-9 {
            wins += 1;
        }
        assert!(
            r_mrd.jct.micros() as f64 <= r_lru.jct.micros() as f64 * 1.15,
            "{w}: MRD {} vs LRU {} — losing by more than 15%",
            r_mrd.jct,
            r_lru.jct
        );
    }
    assert!(
        wins * 2 > total,
        "MRD should win hit ratio on most workloads ({wins}/{total})"
    );
}

#[test]
fn belady_oracle_dominates_lru_hit_ratio() {
    let params = small_params();
    for w in [
        Workload::ConnectedComponents,
        Workload::KMeans,
        Workload::SvdPlusPlus,
    ] {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        let cache = (footprint(&spec) / 6).max(1);
        let c = cfg(4, cache);
        let trace = collect_trace(&spec, &plan, &c);
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, c);
        let mut belady = BeladyMinPolicy::from_trace(&trace);
        let r_b = sim.run(&mut belady);
        let mut lru = PolicyKind::Lru.build();
        let r_l = sim.run(&mut *lru);
        assert!(
            r_b.hit_ratio() >= r_l.hit_ratio() - 1e-9,
            "{w}: Belady {} < LRU {}",
            r_b.hit_ratio(),
            r_l.hit_ratio()
        );
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let params = small_params();
    let spec = Workload::PageRank.build(&params);
    let plan = AppPlan::build(&spec);
    let c = cfg(3, footprint(&spec) / 5);
    let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, c);
    let runs: Vec<RunReport> = (0..3)
        .map(|_| {
            let mut p = MrdPolicy::full();
            sim.run(&mut p)
        })
        .collect();
    assert_eq!(runs[0].jct, runs[1].jct);
    assert_eq!(runs[1].jct, runs[2].jct);
    assert_eq!(runs[0].stats, runs[1].stats);
}

#[test]
fn adhoc_mode_never_beats_recurring_on_hits() {
    let params = small_params();
    for w in [Workload::KMeans, Workload::LabelPropagation] {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        let c = cfg(4, (footprint(&spec) / 4).max(1));
        let mut mrd = MrdPolicy::full();
        let rec = Simulation::new(&spec, &plan, ProfileMode::Recurring, c.clone()).run(&mut mrd);
        let mut mrd = MrdPolicy::full();
        let adhoc = Simulation::new(&spec, &plan, ProfileMode::AdHoc, c).run(&mut mrd);
        assert!(
            rec.hit_ratio() >= adhoc.hit_ratio() - 0.02,
            "{w}: recurring {} markedly below ad-hoc {}",
            rec.hit_ratio(),
            adhoc.hit_ratio()
        );
    }
}

#[test]
fn eviction_only_and_prefetch_only_compose_into_full() {
    // Full MRD's hit ratio should be at least each single mode's on an
    // I/O-heavy workload with both spills and reuse.
    let params = small_params();
    let spec = Workload::SvdPlusPlus.build(&params);
    let plan = AppPlan::build(&spec);
    // Per-node cache: ~40% of the cluster-wide cached footprint spread over
    // 4 nodes — blocks with *near* references spill and become prefetchable.
    let c = cfg(4, (footprint(&spec) / 10).max(1));
    let run_mode = |mode: MrdMode| {
        let mut p = MrdPolicy::new(MrdConfig {
            mode,
            ..Default::default()
        });
        Simulation::new(&spec, &plan, ProfileMode::Recurring, c.clone()).run(&mut p)
    };
    let evict = run_mode(MrdMode::EvictOnly);
    let prefetch = run_mode(MrdMode::PrefetchOnly);
    let full = run_mode(MrdMode::Full);
    assert!(full.hit_ratio() + 1e-9 >= evict.hit_ratio().max(prefetch.hit_ratio()) - 0.05);
    assert!(full.stats.prefetches > 0);
}

#[test]
fn profile_store_roundtrips_every_workload() {
    let params = small_params();
    let dir = std::env::temp_dir().join(format!("refdist-it-{}", std::process::id()));
    let store = ProfileStore::new(&dir);
    for &w in Workload::sparkbench() {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        let profiler = AppProfiler::new(&spec, &plan, ProfileMode::Recurring);
        store.save(&spec.name, profiler.full()).unwrap();
        let loaded = store.load(&spec.name).unwrap().unwrap();
        assert!(
            !profiler.discrepancy(&loaded),
            "{w}: stored profile disagrees after roundtrip"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn peak_live_set_is_sufficient_for_full_hits() {
    // The live-set analysis claims a cache of peak_bytes suffices for a
    // fully-hitting run under an optimal policy. Validate against the
    // simulator: with per-node capacity of 2x the balanced peak share (the
    // slack covers per-node placement imbalance) and no execution-memory
    // churn, MRD never misses.
    let params = small_params();
    for w in [
        Workload::ConnectedComponents,
        Workload::KMeans,
        Workload::SvdPlusPlus,
    ] {
        let spec = w.build(&params);
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        let live = refdist::dag::LiveSetProfile::compute(&spec, &profile);
        assert!(live.peak_bytes > 0, "{w}: no live set");
        assert!(
            live.peak_bytes <= live.total_bytes,
            "{w}: peak exceeds total"
        );
        let nodes = 4;
        let per_node = (live.peak_bytes / nodes as u64) * 2;
        let c = cfg(nodes, per_node.max(1));
        let mut mrd = MrdPolicy::full();
        let r = Simulation::new(&spec, &plan, ProfileMode::Recurring, c).run(&mut mrd);
        assert_eq!(
            r.stats.misses, 0,
            "{w}: missed with a peak-live-set cache ({} hits)",
            r.stats.hits
        );
    }
}

#[test]
fn stage_execution_respects_dependencies() {
    let params = small_params();
    let spec = Workload::StronglyConnectedComponents.build(&params);
    let plan = AppPlan::build(&spec);
    let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg(4, 1 << 30));
    let mut lru = PolicyKind::Lru.build();
    let r = sim.run(&mut *lru);
    // Every executed stage must start no earlier than its parents ended.
    for (sid, start, _end) in &r.stage_times {
        for &p in plan.stage(*sid).parents.iter() {
            let parent_end = r
                .stage_times
                .iter()
                .find(|(id, _, _)| *id == p)
                .map(|(_, _, e)| *e)
                .expect("parent stage executed");
            assert!(
                *start >= parent_end,
                "{sid} started before parent {p} finished"
            );
        }
    }
}
