//! Long-stream serve smoke tests (tier-1): the streaming driver must hold
//! its two load-bearing promises at four-digit stream lengths —
//!
//! 1. **Equivalence**: a streaming run is byte-identical to the
//!    build-everything-upfront reference on the same stream (reports,
//!    completions, eviction matrix, summary).
//! 2. **O(active) state**: the slot arena's high-water mark tracks *peak
//!    concurrency*, not stream length — retired submissions' slot ranges
//!    are recycled into later admissions.

use refdist::cluster::{
    ArrivalProcess, ClusterConfig, QuotaKind, ServeConfig, ServeReport, ServeSched, ServeSim,
    SimConfig,
};
use refdist::prelude::*;

/// A small two-job iterative app: one cached RDD reused by both jobs.
fn little_app(parts: u32) -> AppSpec {
    let block = 64 * 1024;
    let mut b = AppBuilder::new("stream-app");
    let input = b.input("in", parts, block, 2_000);
    let data = b.narrow("data", input, block, 5_000);
    b.persist(data, StorageLevel::MemoryAndDisk);
    for i in 0..2 {
        let s = b.shuffle(format!("agg{i}"), &[data], parts, block / 8, 500);
        b.action(format!("job{i}"), s);
    }
    b.build()
}

fn stream_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::new(ClusterConfig::tiny(2, 512 * 1024));
    cfg.seed = seed;
    cfg.compute_jitter = 0.0;
    cfg.exec_mem_fraction = 0.0;
    cfg
}

fn run(n: usize, tenants: u32, upfront: bool) -> ServeReport {
    let spec = little_app(2);
    let subs: Vec<(&AppSpec, u32)> = (0..n).map(|i| (&spec, i as u32 % tenants)).collect();
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim: stream_cfg(42),
            // Mean gap well below one app's runtime, so submissions overlap
            // and the cache stays contended, but far fewer than `n` apps
            // are ever live at once.
            arrivals: ArrivalProcess::Poisson { mean_gap_us: 40_000 },
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            upfront,
            intern: true,
            resilience: Default::default(),
        },
    );
    serve.run((0..n).map(|_| PolicyKind::Lru.build()).collect())
}

#[test]
fn thousand_submission_stream_is_bounded_and_equivalent() {
    const N: usize = 1_000;
    let st = run(N, 4, false);
    let up = run(N, 4, true);

    // Equivalence with the upfront reference, field for field (the peak
    // fields differ by design: that is the point of streaming).
    assert_eq!(format!("{:?}", up.reports), format!("{:?}", st.reports));
    assert_eq!(up.arrivals, st.arrivals);
    assert_eq!(up.completions, st.completions);
    assert_eq!(up.tenants, st.tenants);
    assert_eq!(up.cross_evictions, st.cross_evictions);
    assert_eq!(up.makespan, st.makespan);
    assert_eq!(up.summary(), st.summary());
    assert_eq!(up.peak_resident_blocks, st.peak_resident_blocks);
    assert_eq!(up.peak_resident_bytes, st.peak_resident_bytes);

    // The upfront arena holds the whole stream; the streaming arena must
    // track peak concurrency instead. With ~25 stages of work per app and
    // a 40ms mean gap, concurrency stays two orders of magnitude below the
    // stream length — give the bound generous slack so timing tweaks do
    // not make this flaky, while still pinning the O(active) claim.
    assert_eq!(st.reports.len(), N);
    assert!(
        st.peak_active_apps < N as u64 / 10,
        "peak active {} should be far below the stream length {N}",
        st.peak_active_apps
    );
    assert!(
        st.peak_arena_slots < up.peak_arena_slots / 10,
        "streaming arena ({} slots) should be far below the upfront arena \
         ({} slots)",
        st.peak_arena_slots,
        up.peak_arena_slots
    );
    // And the arena actually recycled ranges rather than growing per app:
    // its high-water mark is bounded by what the peak-active cohort needs.
    let slots_per_app = 2; // one cached RDD x two partitions
    assert!(
        st.peak_arena_slots <= (st.peak_active_apps + 1) * slots_per_app,
        "arena {} slots vs {} active apps",
        st.peak_arena_slots,
        st.peak_active_apps
    );
    // Interned admission planned the structure once: 1000 submissions of a
    // single template leave exactly one cache entry, not one per admission.
    assert_eq!(st.distinct_templates, 1);
    assert_eq!(up.distinct_templates, 0); // upfront never interns
}

#[test]
fn template_cache_is_bounded_by_distinct_structures() {
    // A 1k-submission stream cycling through three structurally distinct
    // templates: the cache must hold at most one entry per structure, no
    // matter how long the stream runs. Renaming alone must not split a
    // template.
    const N: usize = 1_000;
    let a = little_app(2);
    let b = little_app(3); // different partition count => different structure
    let mut renamed = little_app(2);
    renamed.name = "same-shape-different-name".into();
    let specs = [&a, &b, &renamed];
    let subs: Vec<(&AppSpec, u32)> = (0..N).map(|i| (specs[i % 3], i as u32 % 4)).collect();
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim: stream_cfg(42),
            arrivals: ArrivalProcess::Poisson { mean_gap_us: 40_000 },
            sched: ServeSched::FairShare,
            quota: QuotaKind::EqualShare,
            upfront: false,
            intern: true,
            resilience: Default::default(),
        },
    );
    let report = serve.run((0..N).map(|_| PolicyKind::Lru.build()).collect());
    assert_eq!(report.reports.len(), N);
    // `a` and `renamed` share one template; `b` differs structurally.
    assert_eq!(report.distinct_templates, 2);
}

#[test]
fn streaming_and_upfront_agree_on_fifo_and_quotas() {
    // A shorter stream across the other scheduler/quota corner, so tier-1
    // covers both dispatch disciplines end to end.
    let spec = little_app(2);
    let subs: Vec<(&AppSpec, u32)> = (0..64).map(|i| (&spec, i % 3)).collect();
    for quota in [QuotaKind::Unlimited, QuotaKind::Bytes(128 * 1024)] {
        let mk = |upfront: bool| {
            let serve = ServeSim::new(
                &subs,
                ServeConfig {
                    sim: stream_cfg(7),
                    arrivals: ArrivalProcess::Poisson { mean_gap_us: 25_000 },
                    sched: ServeSched::Fifo,
                    quota,
                    upfront,
                    intern: true,
                    resilience: Default::default(),
                },
            );
            serve.run((0..subs.len()).map(|_| PolicyKind::Lru.build()).collect())
        };
        let up = mk(true);
        let st = mk(false);
        assert_eq!(format!("{:?}", up.reports), format!("{:?}", st.reports));
        assert_eq!(up.summary(), st.summary());
        assert!(st.peak_arena_slots <= up.peak_arena_slots);
    }
}
