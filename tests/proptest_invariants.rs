//! Property-based tests over randomly generated applications: planning,
//! analysis and simulation invariants must hold for *any* valid DAG, not
//! just the curated workloads.

use proptest::prelude::*;
use refdist::prelude::*;

/// A compact random program: a list of operations over previously defined
/// RDDs.
#[derive(Debug, Clone)]
enum Op {
    Narrow {
        parent: usize,
        cache: bool,
    },
    Shuffle {
        parent: usize,
        parts: u32,
        cache: bool,
    },
    Join {
        left: usize,
        right: usize,
    },
    Action {
        target: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<prop::sample::Index>(), any::<bool>()).prop_map(|(parent, cache)| Op::Narrow {
            parent: parent.index(usize::MAX - 1),
            cache
        }),
        (any::<prop::sample::Index>(), 1u32..6, any::<bool>()).prop_map(
            |(parent, parts, cache)| Op::Shuffle {
                parent: parent.index(usize::MAX - 1),
                parts,
                cache
            }
        ),
        (any::<prop::sample::Index>(), any::<prop::sample::Index>()).prop_map(|(l, r)| Op::Join {
            left: l.index(usize::MAX - 1),
            right: r.index(usize::MAX - 1)
        }),
        any::<prop::sample::Index>().prop_map(|t| Op::Action {
            target: t.index(usize::MAX - 1)
        }),
    ]
}

/// Materialize a random op list into a valid AppSpec.
fn build_spec(ops: &[Op]) -> AppSpec {
    let mut b = AppBuilder::new("proptest-app");
    let mut rdds = vec![b.input("in", 4, 64 << 10, 500)];
    let mut actions = 0;
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Narrow { parent, cache } => {
                let p = rdds[parent % rdds.len()];
                let r = b.narrow(format!("n{i}"), p, 64 << 10, 500);
                if *cache {
                    b.persist(r, StorageLevel::MemoryAndDisk);
                }
                rdds.push(r);
            }
            Op::Shuffle {
                parent,
                parts,
                cache,
            } => {
                let p = rdds[parent % rdds.len()];
                let r = b.shuffle(format!("s{i}"), &[p], *parts, 32 << 10, 500);
                if *cache {
                    b.persist(r, StorageLevel::MemoryAndDisk);
                }
                rdds.push(r);
            }
            Op::Join { left, right } => {
                let l = rdds[left % rdds.len()];
                let r = rdds[right % rdds.len()];
                // Joining differently partitioned RDDs needs a shuffle.
                let j = b.shuffle(format!("j{i}"), &[l, r], 4, 32 << 10, 500);
                rdds.push(j);
            }
            Op::Action { target } => {
                let t = rdds[target % rdds.len()];
                b.action(format!("a{i}"), t);
                actions += 1;
            }
        }
    }
    if actions == 0 {
        let last = *rdds.last().unwrap();
        b.action("final", last);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn planning_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let spec = build_spec(&ops);
        prop_assert!(spec.validate().is_ok());
        let plan = AppPlan::build(&spec);

        // Stage IDs are dense and parents strictly precede children.
        for (i, stage) in plan.stages.iter().enumerate() {
            prop_assert_eq!(stage.id.index(), i);
            for p in stage.parents.iter() {
                prop_assert!(*p < stage.id);
            }
            // The pipelined set never crosses a shuffle boundary: all
            // non-final members must be reachable via narrow deps only.
            prop_assert!(stage.rdds.contains(&stage.final_rdd));
            prop_assert!(stage.num_tasks > 0);
        }
        // Jobs are in submission order and stage appearances >= active.
        prop_assert_eq!(plan.jobs.len(), spec.num_jobs());
        prop_assert!(plan.total_stage_appearances() >= plan.active_stage_count());
        // Each job's result stage belongs to that job.
        for job in plan.jobs.iter() {
            prop_assert_eq!(plan.stage(job.result_stage).job, job.id);
        }
    }

    #[test]
    fn profile_references_are_ordered_and_within_bounds(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        let spec = build_spec(&ops);
        let plan = AppPlan::build(&spec);
        let profile = RefAnalyzer::new(&spec, &plan).profile();
        for refs in profile.per_rdd.values() {
            prop_assert!(!refs.stages.is_empty());
            // Strictly ascending stages; non-decreasing jobs.
            prop_assert!(refs.stages.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(refs.jobs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(refs.stages.len(), refs.jobs.len());
            for s in refs.stages.iter() {
                prop_assert!(s.index() < plan.stages.len());
            }
            // The profiled RDD really is cached.
            prop_assert!(spec.rdd(refs.rdd).is_cached());
        }
        // Ad-hoc visibility is monotone: each successive job reveals at
        // least as many references.
        let mut prev = 0;
        for j in 0..spec.num_jobs() {
            let vis = profile.visible_up_to_job(refdist::dag::JobId(j as u32));
            let total = vis.per_rdd.values().map(|r| r.count()).sum::<usize>();
            prop_assert!(total >= prev);
            prev = total;
        }
        prop_assert_eq!(prev, profile.total_references());
    }

    #[test]
    fn simulation_accounting_is_consistent(
        ops in prop::collection::vec(op_strategy(), 1..25),
        cache_kb in 1u64..512,
        seed in 0u64..1000,
    ) {
        let spec = build_spec(&ops);
        let plan = AppPlan::build(&spec);
        let mut cfg = SimConfig::new(ClusterConfig::tiny(2, cache_kb << 10)).with_seed(seed);
        cfg.compute_jitter = 0.0;
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);

        for build in [
            PolicyKind::Lru.build(),
            PolicyKind::Lrc.build(),
            PolicyKind::MemTune.build(),
        ] {
            let mut p = build;
            let r = sim.run(&mut *p);
            prop_assert_eq!(r.stats.accesses(), r.stats.hits + r.stats.misses);
            prop_assert!(r.stats.disk_hits + r.stats.recomputes <= r.stats.misses);
            prop_assert!(r.stats.prefetch_hits <= r.stats.hits);
            prop_assert_eq!(
                r.tasks,
                plan.stages.iter().map(|s| s.num_tasks as u64).sum::<u64>()
            );
            // Stage times are monotone and JCT is the last stage's end.
            for w in r.stage_times.windows(2) {
                prop_assert!(w[0].2 <= w[1].1);
            }
        }
        let mut mrd = MrdPolicy::full();
        let r = sim.run(&mut mrd);
        prop_assert_eq!(r.stats.accesses(), r.stats.hits + r.stats.misses);
        prop_assert!(r.stats.wasted_prefetches <= r.stats.prefetches);
    }

    #[test]
    fn same_seed_same_result(ops in prop::collection::vec(op_strategy(), 1..20)) {
        let spec = build_spec(&ops);
        let plan = AppPlan::build(&spec);
        let cfg = SimConfig::new(ClusterConfig::tiny(3, 64 << 10)).with_seed(7);
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
        let mut a = MrdPolicy::full();
        let mut b = MrdPolicy::full();
        let ra = sim.run(&mut a);
        let rb = sim.run(&mut b);
        prop_assert_eq!(ra.jct, rb.jct);
        prop_assert_eq!(ra.stats, rb.stats);
    }
}
