//! Golden-file tests for experiment text output.
//!
//! Two small experiments (Table 1 reference-distance stats and the Figure 5
//! graph-workload sweep) are rendered on a tiny fixed configuration and
//! compared byte-for-byte against checked-in snapshots under
//! `tests/golden/`. Any change to workload DAGs, the simulator, policy
//! behaviour, or table formatting shows up here as a diff.
//!
//! To regenerate the snapshots after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_experiments
//! ```
//!
//! then review the diff of `tests/golden/*.txt` before committing.

use refdist::bench::{experiments, run_one, ExpContext, PolicySpec, SweepOptions};
use refdist::cluster::{
    AdmissionPolicy, ArrivalProcess, ClusterConfig, QuotaKind, ResilienceConfig, ServeConfig,
    ServeSched, ServeSim, SimConfig,
};
use refdist::core::ProfileMode;
use refdist::dag::{AppPlan, AppSpec};
use refdist::policies::PolicyKind;
use refdist::workloads::Workload;
use std::fs;
use std::path::PathBuf;

/// The fixed context used for snapshots. Deliberately NOT `from_env()`:
/// golden output must not move when `REFDIST_QUICK` or other env knobs are
/// set in the surrounding shell.
fn golden_ctx() -> ExpContext {
    let mut ctx = ExpContext::main().quick();
    ctx.params.partitions = 8;
    ctx.params.scale = 0.02;
    ctx.cluster.nodes = 4;
    ctx
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_experiments`",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "output diverged from {}; if the change is intentional, regenerate \
         with `UPDATE_GOLDEN=1 cargo test --test golden_experiments`",
        path.display()
    );
}

#[test]
fn table1_matches_golden() {
    // Thread count is explicit (not 0 = auto) so REFDIST_THREADS cannot
    // influence the run; the sweep engine guarantees the text is identical
    // at any width regardless.
    let out = experiments::table1_text(&golden_ctx(), 2);
    check_golden("table1.txt", &out);
}

#[test]
fn chaos_crash_matches_golden() {
    // One scripted-crash scenario pinned byte-for-byte: node 1 crashes at
    // stage 2 and rejoins cold two stages later, node 3 is wiped (and
    // immediately replaced) at stage 4. The run summaries — JCT, cache
    // stats, and the fault accounting line — must not move unless the
    // fault engine itself changes.
    let mut ctx = golden_ctx();
    ctx.faults.crash_with_rejoin(1, 2, 2);
    ctx.faults.node_failure(3, 4);
    let spec = Workload::ShortestPaths.build(&ctx.params);
    let plan = AppPlan::build(&spec);
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let cache = (((footprint as f64) * 0.4 / ctx.cluster.nodes as f64) as u64).max(1);
    let mut out = String::new();
    for policy in [PolicySpec::Lru, PolicySpec::Lrc, PolicySpec::MrdFull] {
        let r = run_one(&spec, &plan, &ctx, cache, policy, ProfileMode::Recurring);
        assert!(r.aborted.is_none(), "scripted crashes never abort");
        assert_eq!(r.faults.crashes, 2);
        assert_eq!(r.faults.rejoins, 1);
        out.push_str(&r.summary());
        out.push('\n');
    }
    check_golden("chaos_crash.txt", &out);
}

#[test]
fn serve_fair_matches_golden() {
    // A 3-tenant fair-share stream pinned byte-for-byte: the per-tenant
    // mean/p95/p99 JCT lines and the cross-tenant eviction table must not
    // move unless the serving engine (arrivals, inter-job scheduling, quota
    // enforcement, or tenant attribution) itself changes.
    let ctx = golden_ctx();
    let spec = Workload::ShortestPaths.build(&ctx.params);
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let cache = (((footprint as f64) * 0.3 / ctx.cluster.nodes as f64) as u64).max(1);
    let subs: Vec<(&AppSpec, u32)> = vec![(&spec, 0), (&spec, 1), (&spec, 2)];
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim: SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(ctx.seed),
            arrivals: ArrivalProcess::Poisson {
                mean_gap_us: 100_000,
            },
            sched: ServeSched::FairShare,
            quota: QuotaKind::Unlimited,
            upfront: false,
            intern: true,
            resilience: Default::default(),
        },
    );
    let report = serve.run((0..3).map(|_| PolicyKind::Lru.build()).collect());
    check_golden("serve_fair.txt", &report.summary());
}

#[test]
fn serve_churn_matches_golden() {
    // The resilient-serving end-to-end pinned byte-for-byte: a 6-submission
    // stream over 3 tenants rides out wall-clock node churn plus a
    // retry-exhausting task-fault storm, with app-level retry (budget 3),
    // a bounded admission queue (2 active, queue cap 2) and a per-submission
    // SLO deadline. The summary — per-tenant JCT lines, cross-tenant
    // evictions, the stream-level resilience line, and the SLO attainment
    // lines — must not move unless the resilience engine itself changes.
    let mut ctx = golden_ctx();
    // The same deterministic abort trigger as the crash-mid-stream test:
    // at master seed 11 some submission exhausts its 2-attempt task budget,
    // which is what hands the app-level retry path real work.
    ctx.faults.task_failure_p = 0.04;
    ctx.faults.max_task_attempts = 2;
    // Wall-clock churn: a node dies about every 300ms of cluster time and
    // takes 100ms to come back cold.
    ctx.faults.node_churn(300_000, 100_000);
    let spec = Workload::ShortestPaths.build(&ctx.params);
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let cache = (((footprint as f64) * 0.5 / ctx.cluster.nodes as f64) as u64).max(1);
    let subs: Vec<(&AppSpec, u32)> =
        (0..6u32).map(|i| (&spec, i % 3)).collect::<Vec<_>>();
    let mut sim = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(11);
    sim.faults = ctx.faults.clone();
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim,
            arrivals: ArrivalProcess::Trace(vec![
                0, 50_000, 100_000, 150_000, 200_000, 250_000,
            ]),
            sched: ServeSched::FairShare,
            quota: QuotaKind::Unlimited,
            upfront: false,
            intern: true,
            resilience: ResilienceConfig {
                max_app_attempts: 3,
                retry_backoff_us: 50_000,
                max_retry_backoff_us: 400_000,
                admission: AdmissionPolicy::Queue,
                max_active_apps: Some(2),
                queue_cap: Some(2),
                deadline_us: Some(9_000_000),
            },
        },
    );
    let report = serve.run_with(|_| PolicyKind::Lru.build());
    let res = report
        .resilience
        .as_ref()
        .expect("non-passive config reports resilience");
    assert!(
        res.total_retries() > 0,
        "the fault storm must force at least one app-level retry"
    );
    let crashes: u64 = report.reports.iter().map(|r| r.faults.crashes).sum();
    assert!(crashes > 0, "churn must take at least one node down");
    assert!(
        res.queue_delay_us.iter().any(|&d| d > 0),
        "the 2-active cap must queue at least one arrival"
    );
    let summary = report.summary();
    assert!(summary.contains("resilience:"), "{summary}");
    assert!(summary.contains("slo:"), "{summary}");
    check_golden("serve_churn.txt", &summary);
}

#[test]
fn serve_survives_a_tenant_crash_mid_stream() {
    // Serve x chaos: a retry-exhausting fault storm aimed at the stream
    // must abort only the submissions it hits — the other tenants' apps run
    // to completion and the report stays attributable per tenant.
    let mut ctx = golden_ctx();
    // Each submission draws from its own per-app fault stream, so a
    // moderate failure rate with a tight retry budget splits the stream
    // deterministically: at master seed 11, the third submission exhausts
    // its retries and aborts while the other two ride out their failures.
    ctx.faults.task_failure_p = 0.04;
    ctx.faults.max_task_attempts = 2;
    let spec = Workload::ShortestPaths.build(&ctx.params);
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let cache = (((footprint as f64) * 0.5 / ctx.cluster.nodes as f64) as u64).max(1);
    let subs: Vec<(&AppSpec, u32)> = vec![(&spec, 0), (&spec, 1), (&spec, 2)];
    let mut sim = SimConfig::new(ctx.cluster.with_cache(cache)).with_seed(11);
    sim.faults = ctx.faults.clone();
    let serve = ServeSim::new(
        &subs,
        ServeConfig {
            sim,
            arrivals: ArrivalProcess::Trace(vec![0, 50_000, 100_000]),
            sched: ServeSched::FairShare,
            quota: QuotaKind::Unlimited,
            upfront: false,
            intern: true,
            resilience: Default::default(),
        },
    );
    let report = serve.run((0..3).map(|_| PolicyKind::Lru.build()).collect());
    assert_eq!(report.reports.len(), 3, "every submission gets a report");
    let aborted: Vec<usize> = report
        .reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.aborted.is_some())
        .map(|(i, _)| i)
        .collect();
    assert!(
        !aborted.is_empty(),
        "the fault storm must abort at least one submission"
    );
    assert!(
        aborted.len() < 3,
        "an abort must not cascade to the other tenants"
    );
    for (i, r) in report.reports.iter().enumerate() {
        if let Some(a) = r.aborted {
            assert_eq!(a.app as usize, i, "abort is stamped with the owning app");
            assert_eq!(r.faults.aborts, 1);
        } else {
            assert!(r.jct.micros() > 0, "surviving tenant {i} must finish");
            assert_eq!(r.faults.aborts, 0);
        }
    }
    let summaries = report.tenant_summaries();
    assert_eq!(summaries.len(), 3);
    let total_aborts: u64 = summaries.iter().map(|t| t.aborts).sum();
    assert_eq!(total_aborts, aborted.len() as u64);
}

#[test]
fn fig5_matches_golden() {
    let mut ctx = golden_ctx();
    ctx.cluster = ClusterConfig::lrc_cluster();
    ctx.cluster.nodes = 4;
    let out = experiments::fig5_text(&ctx, &SweepOptions::default().threads(2));
    check_golden("fig5.txt", &out);
}
