//! Operational behaviours beyond the steady state: worker failure (§4.4
//! fault tolerance), straggler routing via delay scheduling, and the
//! adaptive prefetch threshold (the paper's future-work item).
//!
//! ```sh
//! cargo run --release --example operational_features
//! ```

use refdist::prelude::*;

fn main() {
    let params = WorkloadParams {
        partitions: 32,
        scale: 0.2,
        iterations: None,
    };
    let spec = Workload::ConnectedComponents.build(&params);
    let plan = AppPlan::build(&spec);
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();

    let mut cluster = ClusterConfig::main_cluster();
    cluster.nodes = 6;
    let cache = (footprint as f64 * 0.4 / cluster.nodes as f64) as u64;
    let base = SimConfig::new(cluster.with_cache(cache));

    // --- baseline ----------------------------------------------------------
    let mut mrd = MrdPolicy::full();
    let healthy = Simulation::new(&spec, &plan, ProfileMode::Recurring, base.clone()).run(&mut mrd);
    println!("baseline:            {}", healthy.summary());

    // --- worker failure ------------------------------------------------------
    // Node 2 loses its executor a third of the way through the run.
    let mut cfg = base.clone();
    cfg.faults.node_failure(2, plan.active_stage_count() as u32 / 3);
    let mut mrd = MrdPolicy::full();
    let failed = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg).run(&mut mrd);
    println!(
        "with node failure:   {} ({} blocks lost, re-acquired from lineage/disk)",
        failed.summary(),
        failed.stats.lost_blocks
    );

    // --- straggler + delay scheduling ---------------------------------------
    let mut slow = base.clone();
    slow.faults.slow_node(0, 6.0);
    let mut mrd = MrdPolicy::full();
    let straggling =
        Simulation::new(&spec, &plan, ProfileMode::Recurring, slow.clone()).run(&mut mrd);
    let mut routed_cfg = slow;
    routed_cfg.delay_scheduling_us = Some(20_000);
    let mut mrd = MrdPolicy::full();
    let routed = Simulation::new(&spec, &plan, ProfileMode::Recurring, routed_cfg).run(&mut mrd);
    println!(
        "6x straggler:        JCT {:.1}s strict-home vs {:.1}s with delay scheduling",
        straggling.jct_secs(),
        routed.jct_secs()
    );

    // --- adaptive prefetch threshold ------------------------------------------
    let mut bad = base.clone();
    bad.prefetch_threshold = 0.05; // deliberately too aggressive
    bad.max_prefetch_per_node = usize::MAX;
    let mut mrd = MrdPolicy::new(MrdConfig {
        prefetch_horizon: 0,
        ..Default::default()
    });
    let fixed = Simulation::new(&spec, &plan, ProfileMode::Recurring, bad.clone()).run(&mut mrd);
    let mut adaptive_cfg = bad;
    adaptive_cfg.adaptive_threshold = true;
    let mut mrd = MrdPolicy::new(MrdConfig {
        prefetch_horizon: 0,
        ..Default::default()
    });
    let adaptive =
        Simulation::new(&spec, &plan, ProfileMode::Recurring, adaptive_cfg).run(&mut mrd);
    println!(
        "bad 5% threshold:    {} wasted prefetches fixed vs {} adaptive (JCT {:.1}s vs {:.1}s)",
        fixed.stats.wasted_prefetches,
        adaptive.stats.wasted_prefetches,
        fixed.jct_secs(),
        adaptive.jct_secs()
    );
}
