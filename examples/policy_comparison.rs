//! Run every policy in the repository — LRU, FIFO, Random, LRC, MemTune,
//! the three MRD modes, and the Belady-MIN oracle — on the
//! ConnectedComponents workload (the paper's Figure 2 example) and rank
//! them.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use refdist::cluster::collect_trace;
use refdist::policies::BeladyMinPolicy;
use refdist::prelude::*;

fn main() {
    let params = WorkloadParams {
        partitions: 48,
        scale: 0.25,
        iterations: None,
    };
    let spec = Workload::ConnectedComponents.build(&params);
    let plan = AppPlan::build(&spec);

    let mut cluster = ClusterConfig::main_cluster();
    cluster.nodes = 8;
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let cache = (footprint as f64 * 0.35 / cluster.nodes as f64) as u64;
    let cfg = SimConfig::new(cluster.with_cache(cache));
    let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg.clone());

    // The oracle needs the access trace of an unconstrained run.
    let trace = collect_trace(&spec, &plan, &cfg);

    let mut results: Vec<RunReport> = Vec::new();
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Lrc,
        PolicyKind::MemTune,
    ] {
        let mut p = kind.build();
        results.push(sim.run(&mut *p));
    }
    for mode in [MrdMode::EvictOnly, MrdMode::PrefetchOnly, MrdMode::Full] {
        let mut p = MrdPolicy::new(MrdConfig {
            mode,
            ..Default::default()
        });
        results.push(sim.run(&mut p));
    }
    let mut belady = BeladyMinPolicy::from_trace(&trace);
    results.push(sim.run(&mut belady));

    results.sort_by_key(|r| r.jct);
    println!(
        "ConnectedComponents on {} nodes, {} MB cache/node:\n",
        8,
        cache >> 20
    );
    println!(
        "{:<22} {:>8} {:>8} {:>10} {:>10}",
        "policy", "JCT (s)", "hit %", "evictions", "prefetches"
    );
    for r in &results {
        println!(
            "{:<22} {:>8.1} {:>8.1} {:>10} {:>10}",
            r.policy,
            r.jct_secs(),
            r.hit_ratio() * 100.0,
            r.stats.evictions + r.stats.purges,
            r.stats.prefetches,
        );
    }
    println!("\nExpected ranking: Belady-MIN and full MRD at the top, then MRD");
    println!("ablations and LRC, with DAG-oblivious LRU / FIFO / Random at the bottom.");
}
