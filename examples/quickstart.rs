//! Quickstart: build a small iterative application, run it on a simulated
//! cluster under LRU and under MRD, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use refdist::prelude::*;

fn main() {
    // 1. Describe the application the way a Spark driver program would:
    //    an input dataset, a cached parse of it, and four jobs that re-read
    //    the cached data.
    let mut b = AppBuilder::new("quickstart");
    let input = b.input(
        "hdfs://input",
        /*partitions*/ 16,
        /*block bytes*/ 8 << 20,
        /*compute µs*/ 50_000,
    );
    let parsed = b.narrow("parsed", input, 8 << 20, 80_000);
    b.persist(parsed, StorageLevel::MemoryAndDisk);
    for i in 0..4 {
        let grouped = b.shuffle(format!("grouped_{i}"), &[parsed], 16, 2 << 20, 30_000);
        b.action(format!("job_{i}"), grouped);
    }
    let spec = b.build();

    // 2. Plan it: the DAGScheduler splits each job into stages at shuffle
    //    boundaries.
    let plan = AppPlan::build(&spec);
    println!(
        "{}: {} jobs, {} stages, {} RDDs",
        spec.name,
        plan.jobs.len(),
        plan.active_stage_count(),
        spec.rdds.len()
    );

    // 3. Inspect the reference profile MRD will work from.
    let profile = RefAnalyzer::new(&spec, &plan).profile();
    for refs in profile.per_rdd.values() {
        println!(
            "  cached {} referenced at stages {:?}",
            spec.rdd(refs.rdd).name,
            refs.stages.iter().map(|s| s.0).collect::<Vec<_>>()
        );
    }

    // 4. Simulate on a small cluster whose cache holds only part of the
    //    working set, under LRU and under full MRD.
    let cluster = ClusterConfig::tiny(4, /*cache per node*/ 24 << 20);
    let cfg = SimConfig::new(cluster);

    let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
    let mut lru = PolicyKind::Lru.build();
    let lru_report = sim.run(&mut *lru);

    let mut mrd = MrdPolicy::full();
    let mrd_report = sim.run(&mut mrd);

    println!("\n{}", lru_report.summary());
    println!("{}", mrd_report.summary());
    println!(
        "\nMRD finished in {:.0}% of LRU's time ({} prefetches, {} of them hit).",
        mrd_report.normalized_jct(&lru_report) * 100.0,
        mrd_report.stats.prefetches,
        mrd_report.stats.prefetch_hits,
    );
}
