//! The paper's motivating scenario: an I/O-intensive PageRank whose vertex
//! generations compete for cache. Runs the full SparkBench-style PageRank
//! DAG on the Main-cluster preset at several cache sizes and prints the
//! LRU / LRC / MRD hit ratios and runtimes side by side.
//!
//! ```sh
//! cargo run --release --example pagerank_cache
//! ```

use refdist::prelude::*;

fn main() {
    let params = WorkloadParams {
        partitions: 64,
        scale: 0.25,
        iterations: None,
    };
    let spec = Workload::PageRank.build(&params);
    let plan = AppPlan::build(&spec);

    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    println!(
        "PageRank: {} jobs, {} active stages, cached footprint {} MB",
        plan.jobs.len(),
        plan.active_stage_count(),
        footprint >> 20
    );

    let mut cluster = ClusterConfig::main_cluster();
    cluster.nodes = 8; // keep the example fast

    println!(
        "\n{:>12} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}",
        "cache/node", "LRU hit%", "LRC hit%", "MRD hit%", "LRU s", "LRC s", "MRD s"
    );
    for fraction in [0.2, 0.4, 0.8] {
        let cache = (footprint as f64 * fraction / cluster.nodes as f64) as u64;
        let cfg = SimConfig::new(cluster.with_cache(cache));
        let sim = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);

        let mut lru = PolicyKind::Lru.build();
        let r_lru = sim.run(&mut *lru);
        let mut lrc = PolicyKind::Lrc.build();
        let r_lrc = sim.run(&mut *lrc);
        let mut mrd = MrdPolicy::full();
        let r_mrd = sim.run(&mut mrd);

        println!(
            "{:>9} MB {:>9.1} {:>9.1} {:>9.1}   {:>9.1} {:>9.1} {:>9.1}",
            cache >> 20,
            r_lru.hit_ratio() * 100.0,
            r_lrc.hit_ratio() * 100.0,
            r_mrd.hit_ratio() * 100.0,
            r_lru.jct_secs(),
            r_lrc.jct_secs(),
            r_mrd.jct_secs(),
        );
    }
    println!("\nMRD should dominate at every size; the gap is widest when the cache");
    println!("holds only part of the vertex generations (paper Figs. 4-7).");
}
