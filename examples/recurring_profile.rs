//! Ad-hoc vs recurring applications (paper §4.1 / §5.8).
//!
//! The first run of an application only sees each job's DAG as it is
//! submitted, so cross-job references look infinitely distant. A recurring
//! application replays with a stored whole-application profile. This example
//! runs K-Means both ways, persists the profile through a `ProfileStore`
//! (the AppProfiler's on-disk store), reloads it, and verifies the reloaded
//! profile reproduces the recurring-run behaviour.
//!
//! ```sh
//! cargo run --release --example recurring_profile
//! ```

use refdist::prelude::*;

fn main() {
    let params = WorkloadParams {
        partitions: 32,
        scale: 0.2,
        iterations: None,
    };
    let spec = Workload::KMeans.build(&params);
    let plan = AppPlan::build(&spec);

    let mut cluster = ClusterConfig::main_cluster();
    cluster.nodes = 6;
    let footprint: u64 = spec.cached_rdds().map(|r| r.total_size()).sum();
    let cfg = SimConfig::new(cluster.with_cache((footprint as f64 * 0.5 / 6.0) as u64));

    // First run: ad-hoc visibility, one job DAG at a time.
    let adhoc = Simulation::new(&spec, &plan, ProfileMode::AdHoc, cfg.clone());
    let mut mrd = MrdPolicy::full();
    let first = adhoc.run(&mut mrd);
    println!("first (ad-hoc) run:    {}", first.summary());

    // The profiler stores the completed application's profile...
    let profiler = AppProfiler::new(&spec, &plan, ProfileMode::Recurring);
    let store = ProfileStore::new(std::env::temp_dir().join("refdist-profiles"));
    let path = store
        .save(&spec.name, profiler.full())
        .expect("save profile");
    println!("profile stored at {}", path.display());

    // ...and a later run loads it and sees the whole DAG from the start.
    let stored = store
        .load(&spec.name)
        .expect("read profile")
        .expect("profile exists");
    assert!(
        !profiler.discrepancy(&stored),
        "stored profile must match the DAG"
    );
    let recurring = Simulation::new(&spec, &plan, ProfileMode::Recurring, cfg);
    let mut mrd = MrdPolicy::full();
    let second = recurring.run(&mut mrd);
    println!("recurring run:         {}", second.summary());

    println!(
        "\nrecurring vs ad-hoc: {:.0}% of the first run's JCT, hit ratio {:.1}% -> {:.1}%",
        second.jct.micros() as f64 / first.jct.micros() as f64 * 100.0,
        first.hit_ratio() * 100.0,
        second.hit_ratio() * 100.0,
    );
}
